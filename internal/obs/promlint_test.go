package obs

import (
	"bytes"
	"strings"
	"testing"
)

func lint(t *testing.T, text string) []string {
	t.Helper()
	return LintProm(strings.NewReader(text))
}

func wantClean(t *testing.T, text string) {
	t.Helper()
	if f := lint(t, text); len(f) != 0 {
		t.Fatalf("valid exposition flagged:\n%s\ninput:\n%s", strings.Join(f, "\n"), text)
	}
}

func wantFinding(t *testing.T, text, substr string) {
	t.Helper()
	for _, f := range lint(t, text) {
		if strings.Contains(f, substr) {
			return
		}
	}
	t.Fatalf("no finding containing %q for:\n%s\ngot: %v", substr, text, lint(t, text))
}

func TestLintPromAcceptsValid(t *testing.T) {
	wantClean(t, `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{op="read"} 10
reqs_total{op="write"} 3
# HELP temp Current temperature.
# TYPE temp gauge
temp -3.5
`)
	// A real exporter histogram must pass.
	var h Histogram
	for i := uint64(1); i < 2000; i *= 3 {
		h.Observe(i)
	}
	var b bytes.Buffer
	if err := PromHistogram(&b, "lat_ns", "Latency.", `op="read"`, &h); err != nil {
		t.Fatal(err)
	}
	if err := PromHistogramSeries(&b, "lat_ns", `op="write"`, &h); err != nil {
		t.Fatal(err)
	}
	wantClean(t, b.String())
	// Unlabeled histogram too.
	b.Reset()
	if err := PromHistogram(&b, "lat_ns", "Latency.", "", &h); err != nil {
		t.Fatal(err)
	}
	wantClean(t, b.String())
}

func TestLintPromEmptyIsValid(t *testing.T) {
	wantClean(t, "")
}

func TestLintPromDuplicateHeader(t *testing.T) {
	wantFinding(t, `# HELP x X.
# HELP x X.
# TYPE x counter
x 1
`, "duplicate HELP")
	// The pre-fix serve bug: a header per labeled series.
	wantFinding(t, `# HELP lat L.
# TYPE lat histogram
lat_bucket{op="a",le="+Inf"} 1
lat_sum{op="a"} 1
lat_count{op="a"} 1
# HELP lat L.
# TYPE lat histogram
lat_bucket{op="b",le="+Inf"} 1
lat_sum{op="b"} 1
lat_count{op="b"} 1
`, "after the family's samples")
}

func TestLintPromNonContiguousFamily(t *testing.T) {
	wantFinding(t, `a_total 1
b_total 2
a_total 3
`, "non-contiguous")
}

func TestLintPromRejectsBadValues(t *testing.T) {
	wantFinding(t, `# TYPE c counter
c NaN
`, "NaN")
	wantFinding(t, `# TYPE c counter
c -4
`, "negative")
	wantFinding(t, `# TYPE h histogram
h_bucket{le="1"} -2
h_bucket{le="+Inf"} 1
h_sum 1
h_count 1
`, "negative")
	// Negative gauges are fine.
	wantClean(t, `# TYPE g gauge
g -4
`)
}

func TestLintPromHistogramStructure(t *testing.T) {
	wantFinding(t, `# TYPE h histogram
h_bucket{le="8"} 1
h_bucket{le="4"} 2
h_bucket{le="+Inf"} 3
h_sum 9
h_count 3
`, "not increasing")
	wantFinding(t, `# TYPE h histogram
h_bucket{le="4"} 5
h_bucket{le="8"} 3
h_bucket{le="+Inf"} 5
h_sum 9
h_count 5
`, "cumulative count decreases")
	wantFinding(t, `# TYPE h histogram
h_bucket{le="4"} 1
h_sum 9
h_count 1
`, "no +Inf")
	wantFinding(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 9
h_count 4
`, "_count 4 != +Inf bucket 3")
	wantFinding(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_count 3
`, "no _sum")
}

func TestLintPromLabelRules(t *testing.T) {
	wantFinding(t, `x_total{a="1",a="2"} 1
`, "duplicate label")
	wantFinding(t, `# TYPE x counter
x_total{a="1",b="2"} 1
x_total{b="2",a="1"} 1
`, "label order")
}

func TestLintPromUnparseable(t *testing.T) {
	wantFinding(t, "x_total{a=\"1\" 3\n", "unparseable")
	wantFinding(t, `# TYPE x bogus
x 1
`, "illegal TYPE")
}
