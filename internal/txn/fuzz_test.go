package txn

import (
	"encoding/binary"
	"testing"

	"domainvirt/internal/pmo"
)

// FuzzRecover throws arbitrary log bytes, truncated at an arbitrary
// crash offset, at full-store recovery. Whatever a crash left in the
// log area, recovery must never panic, never allocate from a corrupt
// length word, never write outside the pool, never report redone
// alongside an error, and must leave a clean, idempotently
// re-recoverable log on success.
func FuzzRecover(f *testing.F) {
	// A well-formed committed single-pool log: state 2, count 1, one
	// entry targeting a data slot.
	valid := make([]byte, 40)
	binary.LittleEndian.PutUint64(valid[0:], 2)        // state committed
	binary.LittleEndian.PutUint64(valid[8:], 1)        // count
	binary.LittleEndian.PutUint64(valid[16:], 72<<10)  // entry target
	binary.LittleEndian.PutUint64(valid[24:], 8)       // entry length
	binary.LittleEndian.PutUint64(valid[32:], 0xabcd)  // payload
	f.Add(valid, uint16(40))

	// The same log torn mid-record.
	f.Add(valid, uint16(20))

	// Committed log whose length word is a wild u64 (the allocation/
	// overflow hazard) and whose target is outside the pool.
	corrupt := make([]byte, 32)
	binary.LittleEndian.PutUint64(corrupt[0:], 2)
	binary.LittleEndian.PutUint64(corrupt[8:], 1)
	binary.LittleEndian.PutUint64(corrupt[16:], 1<<40) // target past pool
	binary.LittleEndian.PutUint64(corrupt[24:], ^uint64(0))
	f.Add(corrupt, uint16(32))

	// A prepared participant naming an unknown coordinator.
	prepared := make([]byte, 24)
	binary.LittleEndian.PutUint64(prepared[0:], 3)
	binary.LittleEndian.PutUint64(prepared[8:], 1)
	binary.LittleEndian.PutUint64(prepared[16:], 99) // no such pool
	f.Add(prepared, uint16(24))

	f.Fuzz(func(t *testing.T, logBytes []byte, crashOff uint16) {
		s := pmo.NewStore()
		p, err := s.Create("fuzz", 80<<10, pmo.ModeDefault, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		logOff, logSize := p.LogArea()
		n := int(crashOff)
		if n > len(logBytes) {
			n = len(logBytes)
		}
		data := logBytes[:n]
		if uint64(len(data)) > logSize {
			data = data[:logSize]
		}
		if len(data) > 0 {
			p.Write(uint32(logOff), data)
		}

		redone, err := RecoverMulti(p, s.ByID)
		if err != nil {
			if redone {
				t.Fatalf("redone=true alongside error %v", err)
			}
			return
		}
		if st := LogStateOf(p); st != StateClean {
			t.Fatalf("log state %d after successful recovery", st)
		}
		redone2, err2 := RecoverMulti(p, s.ByID)
		if err2 != nil || redone2 {
			t.Fatalf("second recovery = (%v, %v), want (false, nil)", redone2, err2)
		}
	})
}
