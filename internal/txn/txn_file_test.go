package txn

import (
	"errors"
	"math/rand"
	"testing"

	"domainvirt/internal/pmo"
)

// TestCrashRecoveryThroughFiles is the full restart path: the "NVM image"
// at crash time is persisted to a pool file, the store is reopened from
// disk (a new process), and recovery must still yield all-or-nothing.
func TestCrashRecoveryThroughFiles(t *testing.T) {
	for _, crash := range []CrashPoint{CrashBeforeCommit, CrashAfterCommit, CrashMidApply} {
		dir := t.TempDir()
		store, err := pmo.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := store.Create("bank", 8<<20, pmo.ModeDefault, "t")
		if err != nil {
			t.Fatal(err)
		}
		acct, err := pool.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}
		pool.WriteU64(acct.Offset(), 500)
		pool.WriteU64(acct.Offset()+8, 500)
		pool.SetRoot(acct)
		if err := store.Sync(); err != nil {
			t.Fatal(err)
		}

		// A transfer transaction crashes mid-flight.
		tx, err := Begin(pool)
		if err != nil {
			t.Fatal(err)
		}
		tx.SetCrashPoint(crash)
		if err := tx.WriteU64(acct.Offset(), 400); err != nil {
			t.Fatal(err)
		}
		if err := tx.WriteU64(acct.Offset()+8, 600); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
			t.Fatal("crash point did not fire")
		}
		if err := store.Sync(); err != nil { // the NVM image at power loss
			t.Fatal(err)
		}

		// "Reboot": reopen from disk and recover.
		store2, err := pmo.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		pool2, ok := store2.Get("bank")
		if !ok {
			t.Fatal("pool lost across restart")
		}
		if _, err := Recover(pool2); err != nil {
			t.Fatal(err)
		}
		root := pool2.Root()
		a := pool2.ReadU64(root.Offset())
		b := pool2.ReadU64(root.Offset() + 8)
		if a+b != 1000 {
			t.Fatalf("crash %v: money not conserved: %d + %d", crash, a, b)
		}
		allOld := a == 500 && b == 500
		allNew := a == 400 && b == 600
		if !allOld && !allNew {
			t.Fatalf("crash %v: torn state (%d, %d)", crash, a, b)
		}
		if crash == CrashAfterCommit || crash == CrashMidApply {
			if !allNew {
				t.Errorf("crash %v: committed transfer lost", crash)
			}
		} else if !allOld {
			t.Errorf("crash %v: uncommitted transfer applied", crash)
		}
	}
}

// TestRecoveryIdempotentAcrossRestarts: crash during recovery itself
// (modeled as recover → re-sync → reopen → recover again) must converge.
func TestRecoveryIdempotentAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	store, _ := pmo.OpenStore(dir)
	pool, _ := store.Create("p", 8<<20, pmo.ModeDefault, "t")
	o, _ := pool.Alloc(64)
	tx, _ := Begin(pool)
	tx.SetCrashPoint(CrashAfterCommit)
	_ = tx.WriteU64(o.Offset(), 7)
	_ = tx.Commit()
	_ = store.Sync()

	for round := 0; round < 3; round++ {
		s, err := pmo.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := s.Get("p")
		if _, err := Recover(p); err != nil {
			t.Fatal(err)
		}
		if got := p.ReadU64(o.Offset()); got != 7 {
			t.Fatalf("round %d: value %d", round, got)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManyTransactionsSurviveRestart runs a random committed workload,
// persists, reopens, and verifies every committed value.
func TestManyTransactionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store, _ := pmo.OpenStore(dir)
	pool, _ := store.Create("p", 8<<20, pmo.ModeDefault, "t")
	slab, _ := pool.Alloc(8 * 256)
	rng := rand.New(rand.NewSource(8))
	want := make(map[uint32]uint64)
	for i := 0; i < 200; i++ {
		tx, err := Begin(pool)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(5) + 1
		staged := make(map[uint32]uint64, n)
		for j := 0; j < n; j++ {
			off := slab.Offset() + uint32(rng.Intn(256))*8
			v := rng.Uint64()
			if err := tx.WriteU64(off, v); err != nil {
				t.Fatal(err)
			}
			staged[off] = v
		}
		if rng.Intn(4) == 0 {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		for off, v := range staged {
			want[off] = v
		}
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}

	store2, _ := pmo.OpenStore(dir)
	pool2, _ := store2.Get("p")
	if _, err := Recover(pool2); err != nil {
		t.Fatal(err)
	}
	for off, v := range want {
		if got := pool2.ReadU64(off); got != v {
			t.Fatalf("offset %#x: %d, want %d", off, got, v)
		}
	}
}
