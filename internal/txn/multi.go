package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"domainvirt/internal/pmo"
)

// Cross-pool durable transactions: a data structure spanning several PMOs
// (as the multi-PMO benchmarks do) needs updates in different pools to
// commit atomically. MultiTx implements two-phase commit over the
// per-pool redo logs:
//
//  1. stage: each participant pool's writes go to its own log area;
//  2. prepare: every participant's log is marked prepared, naming the
//     coordinator pool;
//  3. decide: the coordinator pool's log is marked committed (the single
//     atomic commit point);
//  4. apply: home locations in every pool are updated;
//  5. clean: all logs return to clean.
//
// Recovery consults the coordinator: a prepared participant redoes its
// log only if the coordinator had committed; otherwise it discards.

// Additional log states for participants of a cross-pool transaction.
const (
	logPrepared = 3
)

// Participant log layout extends the single-pool layout: on prepare, the
// word after the entry count stores the coordinator's pool ID.
const logCoordOff = 16 // u64: coordinator pool ID (participants only)

// multiEntriesOff leaves room for the coordinator pointer.
const multiEntriesOff = 24

// MultiTx is a durable transaction spanning several pools.
type MultiTx struct {
	coord *pmo.Pool
	parts map[uint32]*Tx // per-pool single-pool transactions
	pools map[uint32]*pmo.Pool
	crash CrashPoint
	done  bool

	// UnsafeNoPrepareFence and UnsafeNoDecisionFence reintroduce two
	// recovery bugs the crash-conformance harness caught, for
	// fault-injection demonstrations ONLY (see the .crash repros in
	// internal/crashconform/testdata/repros):
	//
	// NoPrepareFence omits the barrier between a participant's
	// count/coordinator-pointer stores and its prepared mark, so under
	// reordered flushes the prepared mark can persist alone and recovery
	// consults a stale or zero coordinator pointer.
	//
	// NoDecisionFence omits the barrier between the coordinator's
	// count=0 store and its committed mark, so the committed mark can
	// persist while a stale entry count from an earlier transaction
	// survives — recovery then replays the coordinator's old log.
	UnsafeNoPrepareFence  bool
	UnsafeNoDecisionFence bool
}

// BeginMulti starts a cross-pool transaction coordinated by coord. Every
// pool written must be enlisted via Write*/pool registration on first
// use; the coordinator itself may also be written.
func BeginMulti(coord *pmo.Pool) (*MultiTx, error) {
	if _, size := coord.LogArea(); size == 0 {
		return nil, fmt.Errorf("txn: coordinator pool %q has no log area", coord.Name())
	}
	switch coord.ReadU64(uint32(coordLogOff(coord) + logStateOff)) {
	case logClean, logActive:
	default:
		return nil, fmt.Errorf("txn: coordinator pool %q has an unrecovered log", coord.Name())
	}
	return &MultiTx{
		coord: coord,
		parts: make(map[uint32]*Tx),
		pools: make(map[uint32]*pmo.Pool),
	}, nil
}

func coordLogOff(p *pmo.Pool) uint64 {
	off, _ := p.LogArea()
	return off
}

// SetCrashPoint arms crash injection for Commit.
func (m *MultiTx) SetCrashPoint(p CrashPoint) { m.crash = p }

func (m *MultiTx) txFor(pool *pmo.Pool) (*Tx, error) {
	if t, ok := m.parts[pool.ID()]; ok {
		return t, nil
	}
	t, err := Begin(pool)
	if err != nil {
		return nil, err
	}
	// Participant logs use the multi layout: reserve the coordinator
	// pointer slot.
	t.cursor = multiEntriesOff
	t.multi = true
	m.parts[pool.ID()] = t
	m.pools[pool.ID()] = pool
	return t, nil
}

// Write stages a durable write of src at off in pool. The coordinator
// pool itself cannot be written: its log area holds only the decision
// record (use a dedicated coordinator pool, or a single-pool Tx).
func (m *MultiTx) Write(pool *pmo.Pool, off uint32, src []byte) error {
	if m.done {
		return errors.New("txn: transaction already finished")
	}
	if pool.ID() == m.coord.ID() {
		return fmt.Errorf("txn: coordinator pool %q cannot be a participant", pool.Name())
	}
	t, err := m.txFor(pool)
	if err != nil {
		return err
	}
	return t.Write(off, src)
}

// WriteU64 stages a durable u64 write in pool.
func (m *MultiTx) WriteU64(pool *pmo.Pool, off uint32, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return m.Write(pool, off, buf[:])
}

// ReadU64 reads with read-your-writes semantics from pool.
func (m *MultiTx) ReadU64(pool *pmo.Pool, off uint32) uint64 {
	if t, ok := m.parts[pool.ID()]; ok {
		return t.ReadU64(off)
	}
	return pool.ReadU64(off)
}

// participants returns the enlisted pools in deterministic order.
func (m *MultiTx) participants() []*pmo.Pool {
	ids := make([]uint32, 0, len(m.pools))
	for id := range m.pools {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*pmo.Pool, 0, len(ids))
	for _, id := range ids {
		out = append(out, m.pools[id])
	}
	return out
}

// Crash points specific to the two-phase protocol.
const (
	// CrashAfterPrepare stops after every participant is prepared but
	// before the coordinator's decision: recovery must abort everywhere.
	CrashAfterPrepare CrashPoint = 100 + iota
	// CrashAfterDecide stops after the coordinator committed but before
	// any apply: recovery must redo everywhere.
	CrashAfterDecide
	// CrashMidApplyMulti stops after applying some participants.
	CrashMidApplyMulti
)

// Commit runs the two-phase protocol.
func (m *MultiTx) Commit() error {
	if m.done {
		return errors.New("txn: transaction already finished")
	}
	m.done = true
	parts := m.participants()

	// Phase 1: prepare every participant — persist staged entries, then
	// the entry count and coordinator pointer, then the prepared mark.
	// The mark gets its own epoch: recovery trusts the coordinator
	// pointer of any pool marked prepared, so the pointer must be
	// durable strictly before the mark can be.
	for _, p := range parts {
		t := m.parts[p.ID()]
		lo := uint32(t.logOff)
		t.fence() // persist staged entries
		p.WriteU64(lo+logCountOff, t.count)
		p.WriteU64(lo+logCoordOff, uint64(m.coord.ID()))
		if !m.UnsafeNoPrepareFence {
			t.fence() // persist count + coordinator pointer
		}
		p.WriteU64(lo+logStateOff, logPrepared)
		t.fence()
	}
	if m.crash == CrashAfterPrepare {
		return ErrCrashed
	}

	// Phase 2: the coordinator's committed mark is the atomic decision.
	// Its entry count is zeroed so single-pool recovery treats the
	// decision record as an empty (trivially redone) log — and the zero
	// must be durable strictly before the mark, or a crash can leave the
	// committed mark over a stale count from an earlier transaction and
	// recovery replays the coordinator's old log.
	clo := uint32(coordLogOff(m.coord))
	m.coord.WriteU64(clo+logCountOff, 0)
	if !m.UnsafeNoDecisionFence {
		m.coord.Fence() // persist the zeroed decision count
	}
	m.coord.WriteU64(clo+logStateOff, logCommitted)
	m.coord.Fence()
	if m.crash == CrashAfterDecide {
		return ErrCrashed
	}

	// Apply and clean every participant.
	applied := 0
	for _, p := range parts {
		if m.crash == CrashMidApplyMulti && applied >= len(parts)/2 && applied > 0 {
			return ErrCrashed
		}
		t := m.parts[p.ID()]
		for _, off := range t.order {
			p.Write(off, t.pending[off])
		}
		t.fence()
		p.WriteU64(uint32(t.logOff)+logStateOff, logClean)
		applied++
	}
	m.coord.WriteU64(clo+logStateOff, logClean)
	m.coord.Fence()
	return nil
}

// Abort discards the transaction on every participant.
func (m *MultiTx) Abort() {
	if m.done {
		return
	}
	m.done = true
	for _, p := range m.participants() {
		t := m.parts[p.ID()]
		p.WriteU64(uint32(t.logOff)+logStateOff, logClean)
	}
}

// RecoverMulti completes or discards a prepared cross-pool transaction
// found in pool. The lookup function resolves participant/coordinator
// pools by ID (typically store.ByID). It returns whether pool's log was
// redone.
func RecoverMulti(pool *pmo.Pool, lookup func(uint32) (*pmo.Pool, bool)) (bool, error) {
	logOff, logSize := pool.LogArea()
	if logSize == 0 {
		return false, nil
	}
	lo := uint32(logOff)
	if pool.ReadU64(lo+logStateOff) != logPrepared {
		// Not a prepared participant: the single-pool recovery rules
		// apply.
		return Recover(pool)
	}
	coordID := uint32(pool.ReadU64(lo + logCoordOff))
	coord, ok := lookup(coordID)
	if !ok {
		return false, fmt.Errorf("txn: pool %q prepared by unknown coordinator %d", pool.Name(), coordID)
	}
	committed := coord.ReadU64(uint32(coordLogOff(coord))+logStateOff) == logCommitted
	if !committed {
		// The decision never landed: abort.
		pool.WriteU64(lo+logStateOff, logClean)
		return false, nil
	}
	// Redo this participant's log (multi layout).
	count := pool.ReadU64(lo + logCountOff)
	if err := redoEntries(pool, logOff, logSize, multiEntriesOff, count); err != nil {
		return false, err
	}
	pool.WriteU64(lo+logStateOff, logClean)
	return true, nil
}

// RecoverStore runs multi-pool recovery over every pool in a store:
// first every prepared participant consults its coordinator, and only
// then are remaining logs (single-pool logs and coordinator decision
// records) settled. The order is load-bearing: a coordinator's
// committed mark is the only durable evidence of the decision, and
// clearing it before all participants have consulted it makes later
// participants abort a committed transaction — the kill-at-every-step
// harness in internal/crashconform caught exactly that (a mid-apply
// crash recovered one pool's writes and discarded another's).
func RecoverStore(store *pmo.Store) (redone int, err error) {
	infos := store.List()
	// Pass 1: prepared participants only. Nothing is cleared except
	// participant logs, so every consult sees the coordinator's mark
	// exactly as the crash left it.
	for _, info := range infos {
		p, ok := store.Get(info.Name)
		if !ok {
			continue
		}
		if LogStateOf(p) != StatePrepared {
			continue
		}
		r, err := RecoverMulti(p, store.ByID)
		if err != nil {
			return redone, err
		}
		if r {
			redone++
		}
	}
	// Pass 2: settle everything else — committed single-pool logs redo,
	// coordinator decision records (count 0) clear, active logs discard.
	for _, info := range infos {
		p, ok := store.Get(info.Name)
		if !ok {
			continue
		}
		r, err := Recover(p)
		if err != nil {
			return redone, err
		}
		if r {
			redone++
		}
	}
	return redone, nil
}
