// Package txn provides redo-log durable transactions over PMO pools — the
// crash-consistency feature the PMO abstraction requires ("crash
// consistency allowing a PMO to remain in a consistent state even on
// process crashes or system power loss"). Writes are staged in a log area
// inside the pool, made durable with a commit record, then applied to
// their home locations; recovery redoes committed-but-unapplied
// transactions and discards uncommitted ones. Crash points can be
// injected at every step for testing and the crash-recovery example.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"domainvirt/internal/pmo"
)

// Log states, stored in the first word of the pool's log area.
const (
	logClean     = 0
	logActive    = 1
	logCommitted = 2
)

// Log area layout: state u64, entry count u64, then entries. Each entry:
// target offset u64, length u64, payload padded to 8 bytes.
const (
	logStateOff   = 0
	logCountOff   = 8
	logEntriesOff = 16
	entryHdrSize  = 16
)

// CrashPoint selects where an injected crash interrupts Commit.
type CrashPoint int

// Crash points.
const (
	// CrashNone disables injection.
	CrashNone CrashPoint = iota
	// CrashBeforeCommit stops after staging log entries but before the
	// commit record: recovery must discard the transaction.
	CrashBeforeCommit
	// CrashAfterCommit stops after the commit record but before any
	// home-location write: recovery must redo the transaction.
	CrashAfterCommit
	// CrashMidApply stops halfway through applying home-location
	// writes: recovery must redo (idempotently) the transaction.
	CrashMidApply
)

// ErrCrashed is returned by Commit when an injected crash fires.
var ErrCrashed = errors.New("txn: injected crash")

// Tx is one durable transaction on a single pool.
type Tx struct {
	pool    *pmo.Pool
	logOff  uint64
	logSize uint64
	cursor  uint64 // next free byte in the log area
	count   uint64
	// pending provides read-your-writes before commit.
	pending map[uint32][]byte
	order   []uint32
	crash   CrashPoint
	done    bool
	// multi marks this as a participant leg of a cross-pool MultiTx,
	// whose log layout reserves a coordinator-pointer slot.
	multi bool

	// UnsafeOmitStageFence reintroduces a write-ahead-logging bug for
	// fault-injection demonstrations ONLY: Commit skips the persist
	// barrier between the staged log entries and the commit record, so
	// under reordered flushes the commit record can reach NVM before an
	// entry and recovery replays a torn log. Never set in production
	// code; internal/crashconform uses it to prove the referee catches
	// the missing fence.
	UnsafeOmitStageFence bool
}

// Begin starts a transaction on pool. The pool must have a log area and
// must not have a committed-but-unapplied log (run Recover first).
func Begin(pool *pmo.Pool) (*Tx, error) {
	logOff, logSize := pool.LogArea()
	if logSize == 0 {
		return nil, fmt.Errorf("txn: pool %q has no log area", pool.Name())
	}
	switch pool.ReadU64(uint32(logOff + logStateOff)) {
	case logClean:
	case logActive:
		// A previous crash left a partial log; it is safe to overwrite.
	case logCommitted:
		return nil, fmt.Errorf("txn: pool %q has an unrecovered committed log; run Recover", pool.Name())
	}
	t := &Tx{
		pool:    pool,
		logOff:  logOff,
		logSize: logSize,
		cursor:  logEntriesOff,
		pending: make(map[uint32][]byte),
	}
	pool.WriteU64(uint32(logOff+logStateOff), logActive)
	pool.WriteU64(uint32(logOff+logCountOff), 0)
	return t, nil
}

// SetCrashPoint arms crash injection for Commit.
func (t *Tx) SetCrashPoint(p CrashPoint) { t.crash = p }

// Write stages a durable write of src at pool offset off.
func (t *Tx) Write(off uint32, src []byte) error {
	if t.done {
		return errors.New("txn: transaction already finished")
	}
	need := uint64(entryHdrSize) + alignUp8(uint64(len(src)))
	if t.cursor+need > t.logSize {
		return fmt.Errorf("txn: log full (%d of %d bytes)", t.cursor, t.logSize)
	}
	base := uint32(t.logOff + t.cursor)
	t.pool.WriteU64(base, uint64(off))
	t.pool.WriteU64(base+8, uint64(len(src)))
	t.pool.Write(base+entryHdrSize, src)
	t.cursor += need
	t.count++
	if _, seen := t.pending[off]; !seen {
		t.order = append(t.order, off)
	}
	cp := make([]byte, len(src))
	copy(cp, src)
	t.pending[off] = cp
	return nil
}

// WriteU64 stages a durable u64 write.
func (t *Tx) WriteU64(off uint32, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return t.Write(off, buf[:])
}

// WriteOID stages a durable persistent-pointer write.
func (t *Tx) WriteOID(off uint32, o pmo.OID) error { return t.WriteU64(off, uint64(o)) }

// Read reads len(dst) bytes at off with read-your-writes semantics for
// exact-offset staged writes.
func (t *Tx) Read(off uint32, dst []byte) {
	if v, ok := t.pending[off]; ok && len(v) >= len(dst) {
		copy(dst, v[:len(dst)])
		return
	}
	t.pool.Read(off, dst)
}

// ReadU64 reads a u64 with read-your-writes semantics.
func (t *Tx) ReadU64(off uint32) uint64 {
	var buf [8]byte
	t.Read(off, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// ReadOID reads a persistent pointer with read-your-writes semantics.
func (t *Tx) ReadOID(off uint32) pmo.OID { return pmo.OID(t.ReadU64(off)) }

// fence emits a persist barrier through the pool: fault-injection hooks
// observe it even in pure library mode, and an attached instrumented
// space receives the trace event.
func (t *Tx) fence() { t.pool.Fence() }

// Commit makes the staged writes durable: persist the log, write the
// commit record, apply to home locations, clear the log. An armed crash
// point aborts at the corresponding step with ErrCrashed, leaving the
// pool exactly as a real crash would.
func (t *Tx) Commit() error {
	if t.done {
		return errors.New("txn: transaction already finished")
	}
	t.done = true
	lo := uint32(t.logOff)

	if !t.UnsafeOmitStageFence {
		t.fence() // persist staged entries
	}
	if t.crash == CrashBeforeCommit {
		return ErrCrashed
	}
	t.pool.WriteU64(lo+logCountOff, t.count)
	t.pool.WriteU64(lo+logStateOff, logCommitted)
	t.fence() // persist the commit record
	if t.crash == CrashAfterCommit {
		return ErrCrashed
	}

	applied := 0
	for _, off := range t.order {
		if t.crash == CrashMidApply && applied >= len(t.order)/2 {
			return ErrCrashed
		}
		t.pool.Write(off, t.pending[off])
		applied++
	}
	t.fence() // persist home locations
	t.pool.WriteU64(lo+logStateOff, logClean)
	t.fence()
	return nil
}

// Abort discards the transaction; staged writes never reach their home
// locations.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.pool.WriteU64(uint32(t.logOff+logStateOff), logClean)
	t.fence()
}

// Recover completes or discards an interrupted transaction on pool. It
// returns whether a committed transaction was redone.
func Recover(pool *pmo.Pool) (redone bool, err error) {
	logOff, logSize := pool.LogArea()
	if logSize == 0 {
		return false, nil
	}
	lo := uint32(logOff)
	switch pool.ReadU64(lo + logStateOff) {
	case logClean:
		return false, nil
	case logActive:
		// Uncommitted: discard.
		pool.WriteU64(lo+logStateOff, logClean)
		return false, nil
	case logCommitted:
		// Redo every logged write (idempotent).
		count := pool.ReadU64(lo + logCountOff)
		if err := redoEntries(pool, logOff, logSize, logEntriesOff, count); err != nil {
			return false, err
		}
		pool.WriteU64(lo+logStateOff, logClean)
		// An empty committed log (a cross-pool coordinator's decision
		// record) is settled but counts as nothing redone.
		return count > 0, nil
	default:
		return false, fmt.Errorf("txn: pool %q log state corrupt", pool.Name())
	}
}

// redoEntries replays count staged entries starting at cursor within the
// log area, validating every header against both the log bounds and the
// pool bounds. Recovery runs over whatever bytes a crash left behind, so
// a torn or stale log must yield an error — never a panic, a wild write
// outside the pool, or an attempt to allocate a corrupt u64 length.
func redoEntries(pool *pmo.Pool, logOff, logSize, cursor, count uint64) error {
	for i := uint64(0); i < count; i++ {
		if cursor+entryHdrSize > logSize {
			return fmt.Errorf("txn: pool %q log corrupt (entry %d header past log end)", pool.Name(), i)
		}
		target := pool.ReadU64(uint32(logOff + cursor))
		length := pool.ReadU64(uint32(logOff + cursor + 8))
		if length > logSize || cursor+entryHdrSize+length > logSize {
			return fmt.Errorf("txn: pool %q log corrupt (entry %d length %d)", pool.Name(), i, length)
		}
		if target > math.MaxUint32 || target > pool.Size() || length > pool.Size()-target {
			return fmt.Errorf("txn: pool %q log corrupt (entry %d target %#x+%d outside pool)",
				pool.Name(), i, target, length)
		}
		buf := make([]byte, length)
		pool.Read(uint32(logOff+cursor+entryHdrSize), buf)
		pool.Write(uint32(target), buf)
		cursor += entryHdrSize + alignUp8(length)
	}
	return nil
}

func alignUp8(v uint64) uint64 { return (v + 7) &^ 7 }

// Log-state diagnostics, exported for tests and the crash-conformance
// referee in internal/crashconform.
const (
	// StateClean is an idle log.
	StateClean uint64 = logClean
	// StateActive is a log with staged, uncommitted entries.
	StateActive uint64 = logActive
	// StateCommitted is a committed-but-unapplied log (or a cross-pool
	// coordinator's decision record).
	StateCommitted uint64 = logCommitted
	// StatePrepared is a cross-pool participant awaiting its
	// coordinator's decision.
	StatePrepared uint64 = logPrepared
)

// LogStateOf reads pool's current log-state word (StateClean if the pool
// has no log area).
func LogStateOf(pool *pmo.Pool) uint64 {
	logOff, logSize := pool.LogArea()
	if logSize == 0 {
		return StateClean
	}
	return pool.ReadU64(uint32(logOff + logStateOff))
}
