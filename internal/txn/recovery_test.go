package txn

import (
	"strings"
	"testing"
)

// Abort after partially staged writes — including a write rejected for
// overflowing the log — must leave home locations untouched and the
// pool immediately reusable.
func TestAbortAfterPartialWrites(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	p.WriteU64(o.Offset(), 1)
	p.WriteU64(o.Offset()+8, 2)

	tx, err := Begin(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteU64(o.Offset(), 10); err != nil {
		t.Fatal(err)
	}
	// Overflow the log mid-transaction.
	_, logSize := p.LogArea()
	if err := tx.Write(o.Offset()+8, make([]byte, logSize)); err == nil {
		t.Fatal("oversized write accepted")
	} else if !strings.Contains(err.Error(), "log full") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The transaction is still usable after the rejected write.
	if err := tx.WriteU64(o.Offset()+8, 20); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	if p.ReadU64(o.Offset()) != 1 || p.ReadU64(o.Offset()+8) != 2 {
		t.Errorf("abort leaked staged writes: %d %d", p.ReadU64(o.Offset()), p.ReadU64(o.Offset()+8))
	}
	if st := LogStateOf(p); st != StateClean {
		t.Errorf("log state %d after abort", st)
	}
	// The pool accepts and applies a fresh transaction.
	tx2, err := Begin(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.WriteU64(o.Offset(), 30); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.ReadU64(o.Offset()) != 30 {
		t.Error("post-abort transaction not applied")
	}
}

// Recovering twice is idempotent: the second pass finds a clean log and
// redoes nothing.
func TestDoubleRecoverIdempotent(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	tx, _ := Begin(p)
	tx.SetCrashPoint(CrashAfterCommit)
	if err := tx.WriteU64(o.Offset(), 7); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrCrashed {
		t.Fatalf("Commit = %v, want ErrCrashed", err)
	}

	redone, err := Recover(p)
	if err != nil || !redone {
		t.Fatalf("first Recover = (%v, %v), want (true, nil)", redone, err)
	}
	if p.ReadU64(o.Offset()) != 7 {
		t.Error("redo did not apply the write")
	}
	redone, err = Recover(p)
	if err != nil || redone {
		t.Fatalf("second Recover = (%v, %v), want (false, nil)", redone, err)
	}
	if st := LogStateOf(p); st != StateClean {
		t.Errorf("log state %d after double recovery", st)
	}
}

// RecoverStore is idempotent across a whole store: after a cross-pool
// crash the first pass redoes the prepared participants, the second
// redoes nothing.
func TestDoubleRecoverStoreIdempotent(t *testing.T) {
	s, coord, pools, offs := multiSetup(t, 3)
	tx, err := BeginMulti(coord)
	if err != nil {
		t.Fatal(err)
	}
	tx.SetCrashPoint(CrashAfterDecide)
	for i, p := range pools {
		if err := tx.WriteU64(p, offs[i], uint64(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != ErrCrashed {
		t.Fatalf("Commit = %v, want ErrCrashed", err)
	}

	redone, err := RecoverStore(s)
	if err != nil {
		t.Fatal(err)
	}
	if redone != len(pools) {
		t.Fatalf("first RecoverStore redid %d logs, want %d", redone, len(pools))
	}
	for i, p := range pools {
		if got := p.ReadU64(offs[i]); got != uint64(200+i) {
			t.Errorf("pool %d = %d after recovery", i, got)
		}
	}
	redone, err = RecoverStore(s)
	if err != nil || redone != 0 {
		t.Fatalf("second RecoverStore = (%d, %v), want (0, nil)", redone, err)
	}
	if st := LogStateOf(coord); st != StateClean {
		t.Errorf("coordinator log state %d", st)
	}
	for i, p := range pools {
		if st := LogStateOf(p); st != StateClean {
			t.Errorf("pool %d log state %d", i, st)
		}
	}
}

// A participant crash between prepare and decide recovers to neither
// pool committed; a crash after decide recovers to both — never one of
// the two (the cross-pool both-or-neither contract at the txn layer;
// internal/crashconform sweeps the same property at every media step).
func TestMultiRecoverBothOrNeither(t *testing.T) {
	for _, cp := range []CrashPoint{CrashAfterPrepare, CrashAfterDecide, CrashMidApplyMulti} {
		s, coord, pools, offs := multiSetup(t, 2)
		tx, err := BeginMulti(coord)
		if err != nil {
			t.Fatal(err)
		}
		tx.SetCrashPoint(cp)
		tx.WriteU64(pools[0], offs[0], 201)
		tx.WriteU64(pools[1], offs[1], 202)
		if err := tx.Commit(); err != ErrCrashed {
			t.Fatalf("crash %d: Commit = %v", cp, err)
		}
		if _, err := RecoverStore(s); err != nil {
			t.Fatalf("crash %d: %v", cp, err)
		}
		a, b := pools[0].ReadU64(offs[0]), pools[1].ReadU64(offs[1])
		wantOld := a == 100 && b == 100
		wantNew := a == 201 && b == 202
		if !wantOld && !wantNew {
			t.Errorf("crash %d: mixed recovery state (%d, %d)", cp, a, b)
		}
	}
}
