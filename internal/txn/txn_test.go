package txn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"domainvirt/internal/pmo"
)

func newPool(t *testing.T) *pmo.Pool {
	t.Helper()
	s := pmo.NewStore()
	p, err := s.Create("t", 8<<20, pmo.ModeDefault, "test")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCommitAppliesWrites(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	tx, err := Begin(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteU64(o.Offset(), 7); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteU64(o.Offset()+8, 9); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes before commit; home location still old.
	if tx.ReadU64(o.Offset()) != 7 {
		t.Error("read-your-writes failed")
	}
	if p.ReadU64(o.Offset()) != 0 {
		t.Error("write leaked to home before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.ReadU64(o.Offset()) != 7 || p.ReadU64(o.Offset()+8) != 9 {
		t.Error("committed writes not applied")
	}
	// Log is clean: a new transaction can begin.
	tx2, err := Begin(p)
	if err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
}

func TestAbortDiscards(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	p.WriteU64(o.Offset(), 42)
	tx, _ := Begin(p)
	if err := tx.WriteU64(o.Offset(), 999); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if p.ReadU64(o.Offset()) != 42 {
		t.Error("aborted write reached home location")
	}
	if err := tx.Commit(); err == nil {
		t.Error("commit after abort succeeded")
	}
}

func TestCrashBeforeCommitDiscardsOnRecovery(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	p.WriteU64(o.Offset(), 1)
	tx, _ := Begin(p)
	tx.SetCrashPoint(CrashBeforeCommit)
	if err := tx.WriteU64(o.Offset(), 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Commit = %v, want ErrCrashed", err)
	}
	redone, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	if redone {
		t.Error("uncommitted transaction redone")
	}
	if p.ReadU64(o.Offset()) != 1 {
		t.Error("uncommitted write survived crash")
	}
}

func TestCrashAfterCommitRedoesOnRecovery(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	tx, _ := Begin(p)
	tx.SetCrashPoint(CrashAfterCommit)
	if err := tx.WriteU64(o.Offset(), 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Commit = %v", err)
	}
	if p.ReadU64(o.Offset()) == 5 {
		t.Fatal("write applied despite crash before apply")
	}
	redone, err := Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	if !redone {
		t.Error("committed transaction not redone")
	}
	if p.ReadU64(o.Offset()) != 5 {
		t.Error("redo lost the committed write")
	}
}

func TestCrashMidApplyIsIdempotent(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(256)
	tx, _ := Begin(p)
	tx.SetCrashPoint(CrashMidApply)
	for i := uint32(0); i < 8; i++ {
		if err := tx.WriteU64(o.Offset()+i*8, uint64(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Commit = %v", err)
	}
	if _, err := Recover(p); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8; i++ {
		if got := p.ReadU64(o.Offset() + i*8); got != uint64(i+100) {
			t.Errorf("slot %d = %d after recovery", i, got)
		}
	}
	// Recovering twice is harmless.
	if redone, err := Recover(p); err != nil || redone {
		t.Errorf("second Recover = (%v,%v)", redone, err)
	}
}

func TestBeginBlockedByUnrecoveredLog(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	tx, _ := Begin(p)
	tx.SetCrashPoint(CrashAfterCommit)
	_ = tx.WriteU64(o.Offset(), 1)
	_ = tx.Commit()
	if _, err := Begin(p); err == nil {
		t.Error("Begin succeeded over a committed-but-unapplied log")
	}
	if _, err := Recover(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Begin(p); err != nil {
		t.Errorf("Begin after recovery: %v", err)
	}
}

func TestLogFull(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(1 << 10)
	tx, _ := Begin(p)
	big := make([]byte, 4096)
	var err error
	for i := 0; i < 100; i++ {
		if err = tx.Write(o.Offset(), big); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("log never filled")
	}
}

func TestLastWriterWinsWithinTx(t *testing.T) {
	p := newPool(t)
	o, _ := p.Alloc(64)
	tx, _ := Begin(p)
	_ = tx.WriteU64(o.Offset(), 1)
	_ = tx.WriteU64(o.Offset(), 2)
	_ = tx.WriteU64(o.Offset(), 3)
	if tx.ReadU64(o.Offset()) != 3 {
		t.Error("read-your-writes returned stale value")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.ReadU64(o.Offset()) != 3 {
		t.Error("last write did not win")
	}
}

// TestCrashConsistencyProperty: for random write sets and any crash
// point, recovery yields either all of the transaction or none of it.
func TestCrashConsistencyProperty(t *testing.T) {
	f := func(seed int64, crashRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		crash := CrashPoint(crashRaw%3) + CrashBeforeCommit
		s := pmo.NewStore()
		p, err := s.Create("t", 8<<20, pmo.ModeDefault, "q")
		if err != nil {
			t.Fatal(err)
		}
		o, _ := p.Alloc(4096)
		// Initial state.
		n := rng.Intn(20) + 1
		offs := make([]uint32, n)
		for i := range offs {
			offs[i] = o.Offset() + uint32(rng.Intn(500))*8
			p.WriteU64(offs[i], uint64(i))
		}
		before := make([]uint64, n)
		for i, off := range offs {
			before[i] = p.ReadU64(off)
		}
		tx, err := Begin(p)
		if err != nil {
			t.Fatal(err)
		}
		tx.SetCrashPoint(crash)
		for _, off := range offs {
			if err := tx.WriteU64(off, uint64(off)*3+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
			t.Fatal("crash point did not fire")
		}
		if _, err := Recover(p); err != nil {
			t.Fatal(err)
		}
		allNew, allOld := true, true
		for i, off := range offs {
			got := p.ReadU64(off)
			if got != uint64(off)*3+1 {
				allNew = false
			}
			if got != before[i] {
				allOld = false
			}
		}
		return allNew || allOld
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
