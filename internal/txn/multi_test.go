package txn

import (
	"errors"
	"testing"

	"domainvirt/internal/pmo"
)

// multiSetup builds a store with a coordinator and n participant pools,
// each holding one u64 slot initialized to 100.
func multiSetup(t *testing.T, n int) (*pmo.Store, *pmo.Pool, []*pmo.Pool, []uint32) {
	t.Helper()
	s := pmo.NewStore()
	coord, err := s.Create("coord", 8<<20, pmo.ModeDefault, "t")
	if err != nil {
		t.Fatal(err)
	}
	var pools []*pmo.Pool
	var offs []uint32
	for i := 0; i < n; i++ {
		p, err := s.Create(poolName(i), 8<<20, pmo.ModeDefault, "t")
		if err != nil {
			t.Fatal(err)
		}
		o, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		p.WriteU64(o.Offset(), 100)
		pools = append(pools, p)
		offs = append(offs, o.Offset())
	}
	return s, coord, pools, offs
}

func poolName(i int) string {
	return string(rune('a'+i)) + "-part"
}

func TestMultiTxCommit(t *testing.T) {
	_, coord, pools, offs := multiSetup(t, 3)
	tx, err := BeginMulti(coord)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pools {
		if err := tx.WriteU64(p, offs[i], uint64(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Read-your-writes across pools.
	if got := tx.ReadU64(pools[1], offs[1]); got != 201 {
		t.Errorf("RYW = %d", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pools {
		if got := p.ReadU64(offs[i]); got != uint64(200+i) {
			t.Errorf("pool %d = %d", i, got)
		}
	}
	// All logs clean: new transactions can begin everywhere.
	for _, p := range append(pools, coord) {
		if _, err := Begin(p); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestMultiTxAbort(t *testing.T) {
	_, coord, pools, offs := multiSetup(t, 2)
	tx, _ := BeginMulti(coord)
	_ = tx.WriteU64(pools[0], offs[0], 1)
	_ = tx.WriteU64(pools[1], offs[1], 2)
	tx.Abort()
	for i, p := range pools {
		if got := p.ReadU64(offs[i]); got != 100 {
			t.Errorf("pool %d = %d after abort", i, got)
		}
	}
	if err := tx.Commit(); err == nil {
		t.Error("commit after abort succeeded")
	}
}

func TestMultiTxCoordinatorNotParticipant(t *testing.T) {
	_, coord, _, _ := multiSetup(t, 1)
	tx, _ := BeginMulti(coord)
	if err := tx.WriteU64(coord, 4096, 1); err == nil {
		t.Error("write to the coordinator pool accepted")
	}
}

// crashAndRecover runs a 3-pool transfer with an injected crash, then
// recovers the whole store and checks atomicity.
func crashAndRecover(t *testing.T, crash CrashPoint, wantApplied bool) {
	t.Helper()
	s, coord, pools, offs := multiSetup(t, 3)
	tx, err := BeginMulti(coord)
	if err != nil {
		t.Fatal(err)
	}
	tx.SetCrashPoint(crash)
	for i, p := range pools {
		if err := tx.WriteU64(p, offs[i], 777); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash %v did not fire: %v", crash, err)
	}
	redone, err := RecoverStore(s)
	if err != nil {
		t.Fatal(err)
	}
	_ = redone
	for i, p := range pools {
		got := p.ReadU64(offs[i])
		if wantApplied && got != 777 {
			t.Errorf("crash %v: pool %d = %d, want 777 (committed)", crash, i, got)
		}
		if !wantApplied && got != 100 {
			t.Errorf("crash %v: pool %d = %d, want 100 (aborted)", crash, i, got)
		}
	}
	// Recovery leaves every log clean and idempotent.
	if n, err := RecoverStore(s); err != nil || n != 0 {
		t.Errorf("second recovery = (%d,%v)", n, err)
	}
	for _, p := range append(pools, coord) {
		if _, err := Begin(p); err != nil {
			t.Errorf("%s not clean after recovery: %v", p.Name(), err)
		}
	}
}

func TestMultiTxCrashAfterPrepareAborts(t *testing.T) {
	crashAndRecover(t, CrashAfterPrepare, false)
}

func TestMultiTxCrashAfterDecideRedoes(t *testing.T) {
	crashAndRecover(t, CrashAfterDecide, true)
}

func TestMultiTxCrashMidApplyRedoes(t *testing.T) {
	crashAndRecover(t, CrashMidApplyMulti, true)
}

func TestMultiTxAtomicityNeverTorn(t *testing.T) {
	// Whatever the crash point, after recovery all three pools agree.
	for _, crash := range []CrashPoint{CrashAfterPrepare, CrashAfterDecide, CrashMidApplyMulti} {
		s, coord, pools, offs := multiSetup(t, 3)
		tx, _ := BeginMulti(coord)
		tx.SetCrashPoint(crash)
		for i, p := range pools {
			_ = tx.WriteU64(p, offs[i], 555)
		}
		_ = tx.Commit()
		if _, err := RecoverStore(s); err != nil {
			t.Fatal(err)
		}
		first := pools[0].ReadU64(offs[0])
		for i, p := range pools {
			if got := p.ReadU64(offs[i]); got != first {
				t.Fatalf("crash %v: torn cross-pool state (%d vs %d)", crash, first, got)
			}
		}
	}
}
