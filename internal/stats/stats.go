// Package stats provides cycle accounting with per-category attribution.
// The categories match the overhead-breakdown rows of Table VII of the paper
// plus the cost sources of the libmpk software baseline.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Category labels a source of protection-overhead cycles.
type Category int

// Overhead categories. CatBase holds the cycles the unprotected execution
// would also pay (instructions, cache/TLB/memory); all other categories are
// protection overhead on top of it.
const (
	CatBase Category = iota
	// CatPermSwitch: WRPKRU / SETPERM permission-change instructions.
	CatPermSwitch
	// CatEntryChange: DTTLB/PTLB entry add/remove/modify operations.
	CatEntryChange
	// CatDTTMiss: DTTLB misses requiring a DTT walk.
	CatDTTMiss
	// CatTLBInval: TLB range invalidations after key remapping, including
	// the induced TLB refill misses attributed via invalidation debt.
	CatTLBInval
	// CatPTLBMiss: PTLB misses requiring a Permission Table lookup.
	CatPTLBMiss
	// CatPTLBAccess: the 1-cycle PTLB lookup added to every domain access
	// by the domain-virtualization design ("access latency" in Table VII).
	CatPTLBAccess
	// CatTrap: user→kernel protection-fault traps (libmpk eviction path).
	CatTrap
	// CatSyscall: pkey_* system-call entry/exit costs (libmpk).
	CatSyscall
	// CatPTEWrite: per-PTE protection-key rewrites done by pkey_mprotect
	// (libmpk; proportional to the populated pages of the domain).
	CatPTEWrite
	// CatShootdown: inter-processor TLB-shootdown signalling (libmpk IPIs
	// and the hardware Range_Flush broadcast of MPK virtualization).
	CatShootdown
	// CatFence: memory-fence serialization attached to SETPERM.
	CatFence
	numCategories
)

// NumCategories is the number of distinct accounting categories.
const NumCategories = int(numCategories)

var categoryNames = [NumCategories]string{
	"base",
	"permission change",
	"entry changes",
	"DTT misses",
	"TLB invalidations",
	"PTLB misses",
	"access latency",
	"traps",
	"syscalls",
	"PTE writes",
	"shootdowns",
	"fences",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Breakdown accumulates cycles and event counts per category.
type Breakdown struct {
	Cycles [NumCategories]uint64
	Counts [NumCategories]uint64
}

// Add charges n cycles (and one event) to category c.
func (b *Breakdown) Add(c Category, n uint64) {
	b.Cycles[c] += n
	b.Counts[c]++
}

// AddN charges n cycles and k events to category c.
func (b *Breakdown) AddN(c Category, n, k uint64) {
	b.Cycles[c] += n
	b.Counts[c] += k
}

// Total returns the total cycles across all categories.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b.Cycles {
		t += v
	}
	return t
}

// OverheadCycles returns total cycles excluding CatBase.
func (b *Breakdown) OverheadCycles() uint64 {
	return b.Total() - b.Cycles[CatBase]
}

// Merge adds o into b.
func (b *Breakdown) Merge(o *Breakdown) {
	for i := range b.Cycles {
		b.Cycles[i] += o.Cycles[i]
		b.Counts[i] += o.Counts[i]
	}
}

// Sub returns the category-wise difference b - o (see Counters.Sub).
func (b Breakdown) Sub(o Breakdown) Breakdown {
	for i := range b.Cycles {
		b.Cycles[i] -= o.Cycles[i]
		b.Counts[i] -= o.Counts[i]
	}
	return b
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { *b = Breakdown{} }

// EventKind labels a discrete microarchitectural event published by a
// protection engine through an EventSink: the storms (key evictions,
// shootdown broadcasts, domain-cache evictions) whose temporal structure
// the end-of-run Counters totals cannot show.
type EventKind int

// Event kinds.
const (
	// EvKeyEviction: a domain lost its protection key to make room for
	// another (libmpk software eviction or MPK-virt hardware remap).
	EvKeyEviction EventKind = iota
	// EvShootdown: TLB-shootdown signalling; the count is the number of
	// cores signalled (libmpk IPIs, MPK-virt Range_Flush broadcast).
	EvShootdown
	// EvDTTLBEviction: a DTTLB capacity eviction (MPK virtualization).
	EvDTTLBEviction
	// EvPTLBEviction: a PTLB capacity eviction (domain virtualization).
	EvPTLBEviction
	numEventKinds
)

// NumEventKinds is the number of distinct event kinds.
const NumEventKinds = int(numEventKinds)

var eventNames = [NumEventKinds]string{
	"key_evictions",
	"shootdowns",
	"dttlb_evictions",
	"ptlb_evictions",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k < 0 || int(k) >= NumEventKinds {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return eventNames[k]
}

// EventSink receives engine events with core attribution. Implementations
// must be cheap: events fire on simulator hot paths (though only on the
// rare eviction/shootdown cases, never per access).
type EventSink interface {
	Event(core int, kind EventKind, n uint64)
}

// Counters holds machine-level event counters for one simulation run.
type Counters struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64

	TLBL1Hits   uint64
	TLBL2Hits   uint64
	TLBMisses   uint64 // page walks
	TLBFlushed  uint64 // entries removed by range invalidations
	DebtRefills uint64 // TLB misses caused by invalidations

	L1DHits   uint64
	L2Hits    uint64
	MemReads  uint64
	MemWrites uint64
	NVMReads  uint64
	NVMWrites uint64

	PermSwitches uint64
	Evictions    uint64 // domain→key or PTLB evictions
	DTTWalks     uint64
	PTLBMisses   uint64
	PTLBHits     uint64
	DTTLBHits    uint64
	DTTLBMisses  uint64

	DomainFaults uint64
	PageFaults   uint64

	ContextSwitches uint64
}

// Sub returns the field-wise difference c - o, used by the observability
// epoch sampler to turn cumulative counters into per-epoch deltas.
func (c Counters) Sub(o Counters) Counters {
	c.Instructions -= o.Instructions
	c.Loads -= o.Loads
	c.Stores -= o.Stores
	c.TLBL1Hits -= o.TLBL1Hits
	c.TLBL2Hits -= o.TLBL2Hits
	c.TLBMisses -= o.TLBMisses
	c.TLBFlushed -= o.TLBFlushed
	c.DebtRefills -= o.DebtRefills
	c.L1DHits -= o.L1DHits
	c.L2Hits -= o.L2Hits
	c.MemReads -= o.MemReads
	c.MemWrites -= o.MemWrites
	c.NVMReads -= o.NVMReads
	c.NVMWrites -= o.NVMWrites
	c.PermSwitches -= o.PermSwitches
	c.Evictions -= o.Evictions
	c.DTTWalks -= o.DTTWalks
	c.PTLBMisses -= o.PTLBMisses
	c.PTLBHits -= o.PTLBHits
	c.DTTLBHits -= o.DTTLBHits
	c.DTTLBMisses -= o.DTTLBMisses
	c.DomainFaults -= o.DomainFaults
	c.PageFaults -= o.PageFaults
	c.ContextSwitches -= o.ContextSwitches
	return c
}

// Merge adds o into c.
func (c *Counters) Merge(o *Counters) {
	c.Instructions += o.Instructions
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.TLBL1Hits += o.TLBL1Hits
	c.TLBL2Hits += o.TLBL2Hits
	c.TLBMisses += o.TLBMisses
	c.TLBFlushed += o.TLBFlushed
	c.DebtRefills += o.DebtRefills
	c.L1DHits += o.L1DHits
	c.L2Hits += o.L2Hits
	c.MemReads += o.MemReads
	c.MemWrites += o.MemWrites
	c.NVMReads += o.NVMReads
	c.NVMWrites += o.NVMWrites
	c.PermSwitches += o.PermSwitches
	c.Evictions += o.Evictions
	c.DTTWalks += o.DTTWalks
	c.PTLBMisses += o.PTLBMisses
	c.PTLBHits += o.PTLBHits
	c.DTTLBHits += o.DTTLBHits
	c.DTTLBMisses += o.DTTLBMisses
	c.DomainFaults += o.DomainFaults
	c.PageFaults += o.PageFaults
	c.ContextSwitches += o.ContextSwitches
}

// Result is the outcome of simulating one event stream under one scheme.
type Result struct {
	Scheme    string
	Cycles    uint64 // total cycles (max across cores for multicore runs)
	WorkSum   uint64 // sum of cycles across cores
	Breakdown Breakdown
	Counters  Counters
}

// OverheadPct returns the execution-time overhead of r relative to base,
// in percent: 100 * (r.Cycles - base.Cycles) / base.Cycles.
func (r Result) OverheadPct(base Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return 100 * (float64(r.Cycles) - float64(base.Cycles)) / float64(base.Cycles)
}

// SwitchesPerSec returns permission switches per second of simulated time at
// the given clock frequency in Hz.
func (r Result) SwitchesPerSec(hz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Counters.PermSwitches) * hz / float64(r.Cycles)
}

// FormatBreakdown renders the non-zero overhead categories as a short
// human-readable list, largest first.
func (r Result) FormatBreakdown() string {
	type row struct {
		c Category
		v uint64
	}
	var rows []row
	for i := 1; i < NumCategories; i++ {
		if r.Breakdown.Cycles[i] > 0 {
			rows = append(rows, row{Category(i), r.Breakdown.Cycles[i]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	var sb strings.Builder
	for i, rw := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", rw.c, rw.v)
	}
	return sb.String()
}
