package stats

import (
	"strings"
	"testing"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(CatBase, 100)
	b.Add(CatPermSwitch, 27)
	b.AddN(CatTLBInval, 286, 1)
	if b.Total() != 413 {
		t.Errorf("Total = %d", b.Total())
	}
	if b.OverheadCycles() != 313 {
		t.Errorf("OverheadCycles = %d", b.OverheadCycles())
	}
	if b.Counts[CatPermSwitch] != 1 {
		t.Errorf("count = %d", b.Counts[CatPermSwitch])
	}
	var c Breakdown
	c.Add(CatBase, 1)
	c.Merge(&b)
	if c.Total() != 414 {
		t.Errorf("merged Total = %d", c.Total())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset failed")
	}
}

func TestCategoryNames(t *testing.T) {
	for i := 0; i < NumCategories; i++ {
		name := Category(i).String()
		if name == "" || strings.HasPrefix(name, "Category(") {
			t.Errorf("category %d has no name", i)
		}
	}
	if !strings.HasPrefix(Category(99).String(), "Category(") {
		t.Error("out-of-range category not flagged")
	}
}

func TestResultOverhead(t *testing.T) {
	base := Result{Cycles: 1000}
	r := Result{Cycles: 1200}
	if got := r.OverheadPct(base); got != 20 {
		t.Errorf("OverheadPct = %v", got)
	}
	if got := r.OverheadPct(Result{}); got != 0 {
		t.Errorf("zero-base OverheadPct = %v", got)
	}
}

func TestSwitchesPerSec(t *testing.T) {
	r := Result{Cycles: 2_200_000}
	r.Counters.PermSwitches = 1000
	// 1000 switches in 1 ms at 2.2 GHz = 1M/sec.
	if got := r.SwitchesPerSec(2.2e9); got < 0.99e6 || got > 1.01e6 {
		t.Errorf("SwitchesPerSec = %v", got)
	}
	if (Result{}).SwitchesPerSec(2.2e9) != 0 {
		t.Error("zero-cycle rate must be 0")
	}
}

func TestCountersMerge(t *testing.T) {
	a := Counters{Loads: 1, Stores: 2, TLBMisses: 3, PermSwitches: 4, DomainFaults: 5}
	b := Counters{Loads: 10, Stores: 20, TLBMisses: 30, PermSwitches: 40, DomainFaults: 50}
	a.Merge(&b)
	if a.Loads != 11 || a.Stores != 22 || a.TLBMisses != 33 || a.PermSwitches != 44 || a.DomainFaults != 55 {
		t.Errorf("merge = %+v", a)
	}
}

func TestFormatBreakdown(t *testing.T) {
	var r Result
	r.Breakdown.Add(CatPermSwitch, 27)
	r.Breakdown.Add(CatTLBInval, 286)
	s := r.FormatBreakdown()
	if !strings.Contains(s, "TLB invalidations") || !strings.Contains(s, "permission change") {
		t.Errorf("FormatBreakdown = %q", s)
	}
	// Largest first.
	if strings.Index(s, "TLB") > strings.Index(s, "permission") {
		t.Errorf("not sorted: %q", s)
	}
}
