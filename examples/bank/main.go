// Bank demonstrates cross-pool durable transactions: every account lives
// in its own PMO/domain (the per-user isolation the paper argues for),
// and transfers between accounts commit atomically via two-phase commit
// over the per-pool redo logs. A crash is injected between the
// coordinator's decision and the apply phase; after "reboot",
// store-wide recovery completes the transfer — no money is ever created
// or destroyed.
//
// Run: go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"log"

	"domainvirt"
	"domainvirt/internal/txn"
)

const balanceOff = 0

type bank struct {
	store    *domainvirt.Store
	space    *domainvirt.Space
	coord    *domainvirt.Pool
	accounts map[string]*domainvirt.Pool
	slots    map[string]uint32
}

func newBank() *bank {
	b := &bank{
		store:    domainvirt.NewStore(),
		space:    domainvirt.NewSpace(nil),
		accounts: make(map[string]*domainvirt.Pool),
		slots:    make(map[string]uint32),
	}
	var err error
	// A dedicated coordinator pool holds only transaction decisions.
	if b.coord, err = b.store.Create("txn-coordinator", 8<<20, domainvirt.ModeDefault, "bank"); err != nil {
		log.Fatal(err)
	}
	return b
}

func (b *bank) open(name string, initial uint64) {
	p, err := b.store.Create("acct-"+name, 8<<20, domainvirt.ModeDefault, "bank")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := b.space.Attach(p, domainvirt.PermRW, ""); err != nil {
		log.Fatal(err)
	}
	rec, err := p.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	p.SetRoot(rec)
	p.WriteU64(rec.Offset()+balanceOff, initial)
	b.accounts[name] = p
	b.slots[name] = rec.Offset() + balanceOff
}

func (b *bank) balance(name string) uint64 {
	return b.accounts[name].ReadU64(b.slots[name])
}

func (b *bank) total() uint64 {
	var t uint64
	for name := range b.accounts {
		t += b.balance(name)
	}
	return t
}

// transfer moves amount from one account pool to another atomically,
// optionally crashing at the given point.
func (b *bank) transfer(from, to string, amount uint64, crash txn.CrashPoint) error {
	tx, err := domainvirt.BeginMulti(b.coord)
	if err != nil {
		return err
	}
	tx.SetCrashPoint(crash)
	fp, tp := b.accounts[from], b.accounts[to]
	fBal := tx.ReadU64(fp, b.slots[from])
	if fBal < amount {
		tx.Abort()
		return fmt.Errorf("insufficient funds in %s", from)
	}
	if err := tx.WriteU64(fp, b.slots[from], fBal-amount); err != nil {
		return err
	}
	tBal := tx.ReadU64(tp, b.slots[to])
	if err := tx.WriteU64(tp, b.slots[to], tBal+amount); err != nil {
		return err
	}
	return tx.Commit()
}

func main() {
	b := newBank()
	b.open("alice", 1000)
	b.open("bob", 250)
	b.open("carol", 0)
	fmt.Printf("opened 3 accounts, total = %d\n", b.total())

	if err := b.transfer("alice", "bob", 300, txn.CrashNone); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice -> bob 300: alice=%d bob=%d (total %d)\n",
		b.balance("alice"), b.balance("bob"), b.total())

	if err := b.transfer("bob", "carol", 10_000, txn.CrashNone); err != nil {
		fmt.Println("oversized transfer rejected:", err)
	}

	// Crash between the commit decision and the apply phase.
	err := b.transfer("alice", "carol", 500, txn.CrashAfterDecide)
	if !errors.Is(err, txn.ErrCrashed) {
		log.Fatal("expected injected crash, got", err)
	}
	fmt.Printf("crashed mid-transfer: alice=%d carol=%d (inconsistent until recovery)\n",
		b.balance("alice"), b.balance("carol"))

	// "Reboot": store-wide recovery consults the coordinator and redoes
	// the committed transfer in both account pools.
	redone, err := domainvirt.RecoverStore(b.store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery redid %d participant log(s)\n", redone)
	fmt.Printf("after recovery: alice=%d carol=%d (total %d)\n",
		b.balance("alice"), b.balance("carol"), b.total())
	if b.total() != 1250 {
		log.Fatalf("money not conserved: %d", b.total())
	}
	if b.balance("carol") != 500 {
		log.Fatalf("committed transfer lost: carol=%d", b.balance("carol"))
	}
	fmt.Println("bank OK")
}
