// Daemon walks through the service layer end to end: it starts an
// in-process pmod server with the hardware domain-virtualization engine,
// speaks the wire protocol as two clients, shows the two isolation
// layers (namespace denial and engine domains) doing their jobs, runs a
// short closed-loop load burst, and drains the server gracefully.
//
// Run: go run ./examples/daemon
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"domainvirt"
)

func main() {
	// 1. A daemon on a loopback port: 4 session-table shards, each with
	// its own protection-engine machine; every request runs inside a
	// least-privilege SETPERM window on the session's own domain.
	srv := domainvirt.NewServer(domainvirt.ServeOptions{
		Engine: domainvirt.SchemeDomainVirt,
		Shards: 4,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	addr := lis.Addr().String()
	fmt.Println("daemon listening on", addr)

	// 2. Alice's session: HELLO -> OPEN -> ATTACH -> WRITE/READ. Her pool
	// is created owner-only, and on the server it is its own protection
	// domain.
	alice, err := domainvirt.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	must(alice.Hello("alice"))
	sid, err := alice.Open("alice-session", 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	must(alice.Attach(true))
	secret := []byte("alice's card number")
	must(alice.Write(64<<10, secret))
	back, err := alice.Read(64<<10, uint32(len(secret)))
	must(err)
	fmt.Printf("alice: session %d round-trips %q\n", sid, back)

	// 3. Bob cannot reach Alice's session. The first wall is the
	// namespace: her pool has no "other" mode bits, so his OPEN is denied
	// before a session exists. (Were a server bug to touch her attachment
	// from his request anyway, the engine wall — her domain is outside
	// every window of his requests — would fault it; see
	// internal/serve's isolation tests for that scenario.)
	bob, err := domainvirt.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()
	must(bob.Hello("bob"))
	if _, err := bob.Open("alice-session", 0); err != nil {
		fmt.Println("bob: denied as expected:", err)
	} else {
		log.Fatal("bob opened alice's session!")
	}

	// 4. Durable transactions over the wire: TX_COMMIT applies all writes
	// through the pool's redo log, so a crash mid-commit replays rather
	// than corrupts.
	must(alice.TxCommit([]domainvirt.TxWrite{
		{Off: 80 << 10, Data: []byte("balance=100")},
		{Off: 90 << 10, Data: []byte("audit=ok")},
	}))
	fmt.Println("alice: transaction committed")

	// 5. A short closed-loop load burst: every client gets its own
	// session/domain, and every read is checked against the client's own
	// write pattern — a nonzero violation count would mean the daemon
	// mixed sessions.
	rep, err := domainvirt.RunLoad(domainvirt.LoadOptions{
		Addr:     addr,
		Clients:  16,
		Duration: 500 * time.Millisecond,
	})
	must(err)
	fmt.Printf("load: %d ops (%.0f ops/s), %d errors, %d isolation violations, p99 %v\n",
		rep.Ops, rep.Throughput(), rep.Errors, rep.IsolationViolations,
		time.Duration(rep.Latency.Quantile(0.99)))

	// 6. The daemon's own view: engine counters prove isolation was live
	// on the request path (SETPERM windows opened), and honest traffic
	// never faulted.
	var stats strings.Builder
	must(srv.WriteMetrics(&stats))
	for _, line := range strings.Split(stats.String(), "\n") {
		if strings.HasPrefix(line, "pmod_engine_events_total") {
			fmt.Println("metrics:", line)
		}
	}

	// 7. Graceful drain: queued requests finish, sessions detach, and
	// the (file-backed) store would sync.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	must(srv.Shutdown(ctx))
	fmt.Println("daemon drained cleanly")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
