// Cluster walks through the cluster tier end to end: three in-process
// pmod nodes behind a pmorouter, sessions routed to each pool's owner
// by rendezvous hashing, v2 batch pipelining through the router, a
// node outage answered with a typed UNAVAILABLE instead of a silent
// failover, a cluster-shaped load burst with per-node attribution, and
// a graceful drain.
//
// Run: go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"domainvirt"
)

func main() {
	// 1. Three pmod nodes on loopback ports. Each is a full daemon:
	// sharded session table, protection engine, owner-only pools.
	var (
		nodes    []string
		servers  []*domainvirt.Server
		backends []net.Listener
	)
	for i := 0; i < 3; i++ {
		srv := domainvirt.NewServer(domainvirt.ServeOptions{
			Engine: domainvirt.SchemeDomainVirt,
			Shards: 2,
		})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(lis)
		servers = append(servers, srv)
		backends = append(backends, lis)
		nodes = append(nodes, lis.Addr().String())
	}
	fmt.Println("nodes:", nodes)

	// 2. The router in front. It terminates HELLO itself (negotiating
	// protocol v2), then routes each OPEN to the backend that owns the
	// pool, multiplexing upstream connections across client sessions.
	router, err := domainvirt.NewRouter(domainvirt.RouterOptions{
		Backends:    nodes,
		HealthEvery: 50 * time.Millisecond,
		FailAfter:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go router.Serve(front)
	addr := front.Addr().String()
	fmt.Println("router listening on", addr)

	// 3. A session through the router lands on its pool's owner — the
	// same node PickNode names, so any replica (or operator) can predict
	// placement without asking the router.
	alice, err := domainvirt.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	must(alice.Hello("alice"))
	fmt.Printf("alice: negotiated wire protocol v%d via the router\n", alice.Proto())
	if _, err := alice.Open("alice-ledger", 512<<10); err != nil {
		log.Fatal(err)
	}
	must(alice.Attach(true))
	must(alice.Write(300<<10, []byte("cluster hello")))
	back, err := alice.Read(300<<10, 13)
	must(err)
	fmt.Printf("alice: %q served by %s\n", back, domainvirt.PickNode("alice-ledger", nodes))

	// 4. Batch pipelining through the router: one network write and one
	// read carry eight ops, and the router relays the container as one
	// frame to the owner.
	reqs := make([]*domainvirt.ServeRequest, 8)
	resps := make([]domainvirt.ServeResponse, 8)
	for i := range reqs {
		reqs[i] = &domainvirt.ServeRequest{
			Op:   domainvirt.OpWrite,
			Off:  uint32(310<<10 + i*256),
			Data: []byte(fmt.Sprintf("entry-%d", i)),
		}
	}
	must(alice.DoBatch(reqs, resps))
	fmt.Println("alice: 8 writes pipelined in one round trip")

	// 5. An outage is a typed answer, not a lie. Kill alice's owner:
	// her next request fails UNAVAILABLE, and a re-OPEN of the same pool
	// stays UNAVAILABLE until the owner returns — the router never
	// "fails over" to a node that would present an empty pool.
	owner := -1
	for i, n := range nodes {
		if n == domainvirt.PickNode("alice-ledger", nodes) {
			owner = i
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	must(servers[owner].Shutdown(ctx))
	backends[owner].Close()
	if _, err := alice.Read(300<<10, 13); err != nil {
		fmt.Println("alice after outage:", err)
	}

	// 6. The same connection keeps working for pools on live nodes.
	must(alice.Hello("alice"))
	for k := 0; ; k++ {
		pool := fmt.Sprintf("spare-%d", k)
		if domainvirt.PickNode(pool, nodes) == nodes[owner] {
			continue
		}
		if _, err := alice.Open(pool, 512<<10); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: re-homed on %q (owner %s)\n", pool, domainvirt.PickNode(pool, nodes))
		break
	}

	// 7. A cluster-shaped load burst against the survivors: shared
	// Zipf-skewed pools, churn, batching, and per-node attribution using
	// the router's own placement function. Isolation still holds: every
	// read must carry its own pool's byte pattern.
	rep, err := domainvirt.RunLoad(domainvirt.LoadOptions{
		Addr:                addr,
		Clients:             8,
		Duration:            500 * time.Millisecond,
		PoolSize:            512 << 10,
		Pools:               12,
		ZipfS:               1.2,
		Churn:               0.02,
		Batch:               4,
		Seed:                1,
		NodeNames:           nodes,
		NodeOf:              func(pool string) int { return pickIndex(pool, nodes) },
		TolerateUnavailable: true,
	})
	must(err)
	fmt.Printf("load: %d ops in %d batches, %d errors, %d isolation violations, %d unavailable absorbed\n",
		rep.Ops, rep.Batches, rep.Errors, rep.IsolationViolations, rep.Unavailable)
	for i := range rep.PerNode {
		n := &rep.PerNode[i]
		fmt.Printf("  node %s: %d ops, %d unavailable\n", n.Name, n.Ops, n.Unavailable)
	}

	// 8. Drain the router (recycling live upstream sessions), then the
	// surviving nodes.
	must(router.Shutdown(ctx))
	for i, srv := range servers {
		if i == owner {
			continue
		}
		must(srv.Shutdown(ctx))
	}
	fmt.Println("cluster drained cleanly")
}

// pickIndex mirrors the router's placement for per-node attribution.
func pickIndex(pool string, nodes []string) int {
	owner := domainvirt.PickNode(pool, nodes)
	for i, n := range nodes {
		if n == owner {
			return i
		}
	}
	return -1
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
