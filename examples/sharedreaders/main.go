// Sharedreaders demonstrates the paper's inter-process sharing policy
// (Section IV-A): "a PMO may be attached exclusively to only one process
// for writing, but may be attached to multiple processes for reading." A
// publisher process fills a catalog PMO under an exclusive writable
// attachment; after it detaches, several reader processes attach the
// same PMO read-only — each at its own address, each checked against its
// own permissions — while any writer is locked out.
//
// Run: go run ./examples/sharedreaders
package main

import (
	"fmt"
	"log"

	"domainvirt"
)

const entries = 8

func main() {
	store := domainvirt.NewStore()
	catalog, err := store.Create("catalog", 8<<20, domainvirt.ModeDefault, "publisher")
	if err != nil {
		log.Fatal(err)
	}

	// --- Publisher: exclusive writable attachment.
	pub := domainvirt.NewSpace(nil)
	wAtt, err := pub.Attach(catalog, domainvirt.PermRW, "")
	if err != nil {
		log.Fatal(err)
	}
	slab, err := catalog.Alloc(entries * 8)
	if err != nil {
		log.Fatal(err)
	}
	catalog.SetRoot(slab)
	for i := uint32(0); i < entries; i++ {
		wAtt.WriteU64(slab.Offset()+i*8, uint64(i)*111)
	}
	// While the writer holds the PMO, nobody else may attach.
	if _, err := domainvirt.NewSpace(nil).Attach(catalog, domainvirt.PermR, ""); err == nil {
		log.Fatal("reader attached alongside exclusive writer")
	} else {
		fmt.Println("while writing:", err)
	}
	if err := pub.Detach(catalog); err != nil {
		log.Fatal(err)
	}

	// --- Readers: multiple simultaneous read-only attachments.
	var readers []*domainvirt.Attachment
	for i := 0; i < 3; i++ {
		sp := domainvirt.NewSpace(nil)
		att, err := sp.Attach(catalog, domainvirt.PermR, "")
		if err != nil {
			log.Fatal(err)
		}
		readers = append(readers, att)
	}
	fmt.Printf("%d readers attached simultaneously\n", len(readers))
	for i, att := range readers {
		sum := uint64(0)
		for j := uint32(0); j < entries; j++ {
			sum += att.ReadU64(catalog.Root().Offset() + j*8)
		}
		fmt.Printf("reader %d at region %v sees checksum %d\n", i, att.Region, sum)
	}

	// Writers stay locked out until the readers leave; reader write
	// attempts are dropped before they reach persistent memory.
	if _, err := domainvirt.NewSpace(nil).Attach(catalog, domainvirt.PermRW, ""); err == nil {
		log.Fatal("writer attached alongside readers")
	} else {
		fmt.Println("while reading:", err)
	}
	readers[0].WriteU64(catalog.Root().Offset()+8, 999999)
	if got := readers[1].ReadU64(catalog.Root().Offset() + 8); got != 111 {
		log.Fatalf("read-only attachment mutated the catalog: %d", got)
	}
	fmt.Println("reader write attempt dropped; catalog intact")
	fmt.Println("sharedreaders OK")
}
