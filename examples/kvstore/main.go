// Kvstore is a persistent key-value store over one PMO: a chained hash
// index whose updates run inside redo-log transactions. It demonstrates
// crash recovery by injecting a crash mid-commit, "restarting", and
// showing that the store recovers to a consistent state.
//
// Run: go run ./examples/kvstore
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"domainvirt"
	"domainvirt/internal/txn"
)

const nbuckets = 1024

// kv is the persistent store: bucket array at root, entries
// {key u64, next OID, value u64}.
type kv struct {
	pool *domainvirt.Pool
}

func create(store *domainvirt.Store) (*kv, error) {
	pool, err := store.Create("kv", 16<<20, domainvirt.ModeDefault, "kvstore")
	if err != nil {
		return nil, err
	}
	buckets, err := pool.Alloc(nbuckets * 8)
	if err != nil {
		return nil, err
	}
	pool.SetRoot(buckets)
	return &kv{pool: pool}, nil
}

func open(store *domainvirt.Store) (*kv, error) {
	pool, err := store.Open("kv", "kvstore", true)
	if err != nil {
		return nil, err
	}
	if redone, err := domainvirt.Recover(pool); err != nil {
		return nil, err
	} else if redone {
		fmt.Println("  (recovery replayed a committed transaction)")
	}
	return &kv{pool: pool}, nil
}

func (s *kv) bucket(key uint64) uint32 {
	h := key * 0x9E3779B97F4A7C15
	return s.pool.Root().Offset() + uint32(h%nbuckets)*8
}

// put inserts or updates key durably; crash selects an injected crash
// point for the demo.
func (s *kv) put(key, val uint64, crash txn.CrashPoint) error {
	tx, err := domainvirt.Begin(s.pool)
	if err != nil {
		return err
	}
	tx.SetCrashPoint(crash)
	b := s.bucket(key)
	for cur := tx.ReadOID(b); !cur.IsNull(); cur = tx.ReadOID(cur.Offset() + 8) {
		if tx.ReadU64(cur.Offset()) == key {
			if err := tx.WriteU64(cur.Offset()+16, val); err != nil {
				return err
			}
			return tx.Commit()
		}
	}
	e, err := s.pool.Alloc(24)
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.WriteU64(e.Offset(), key); err != nil {
		return err
	}
	if err := tx.WriteOID(e.Offset()+8, tx.ReadOID(b)); err != nil {
		return err
	}
	if err := tx.WriteU64(e.Offset()+16, val); err != nil {
		return err
	}
	if err := tx.WriteOID(b, e); err != nil {
		return err
	}
	return tx.Commit()
}

func (s *kv) get(key uint64) (uint64, bool) {
	b := s.bucket(key)
	for cur := s.pool.ReadOID(b); !cur.IsNull(); cur = s.pool.ReadOID(cur.Offset() + 8) {
		if s.pool.ReadU64(cur.Offset()) == key {
			return s.pool.ReadU64(cur.Offset() + 16), true
		}
	}
	return 0, false
}

func main() {
	dir := filepath.Join(os.TempDir(), "pmo-kvstore")
	defer os.RemoveAll(dir)

	store, err := domainvirt.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	s, err := create(store)
	if err != nil {
		log.Fatal(err)
	}

	// Normal operation.
	for k := uint64(1); k <= 100; k++ {
		if err := s.put(k, k*k, txn.CrashNone); err != nil {
			log.Fatal(err)
		}
	}
	v, _ := s.get(7)
	fmt.Println("put 100 keys; get(7) =", v)

	// Crash mid-commit after the commit record: the update is durable
	// and recovery must replay it.
	err = s.put(7, 777, txn.CrashMidApply)
	if !errors.Is(err, txn.ErrCrashed) {
		log.Fatal("expected injected crash, got", err)
	}
	fmt.Println("crashed while applying put(7, 777)")
	if err := store.Sync(); err != nil { // NVM contents at crash time
		log.Fatal(err)
	}

	// "Restart": reopen the store from its files and recover.
	store2, err := domainvirt.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restarting...")
	s2, err := open(store2)
	if err != nil {
		log.Fatal(err)
	}
	v, ok := s2.get(7)
	if !ok || v != 777 {
		log.Fatalf("committed update lost: get(7) = (%d,%v)", v, ok)
	}
	fmt.Println("after recovery: get(7) =", v)

	// Crash before the commit record: the update must vanish.
	err = s2.put(7, 99999, txn.CrashBeforeCommit)
	if !errors.Is(err, txn.ErrCrashed) {
		log.Fatal("expected injected crash, got", err)
	}
	if err := store2.Sync(); err != nil {
		log.Fatal(err)
	}
	store3, err := domainvirt.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restarting...")
	s3, err := open(store3)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = s3.get(7)
	if v != 777 {
		log.Fatalf("uncommitted update leaked: get(7) = %d", v)
	}
	fmt.Println("uncommitted update correctly discarded: get(7) =", v)
	fmt.Println("kvstore OK")
}
