// Quickstart: create a file-backed PMO store, build a persistent data
// structure inside a pool with durable transactions, protect it with a
// domain, and reopen it after "restarting".
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"domainvirt"
)

func main() {
	dir := filepath.Join(os.TempDir(), "pmo-quickstart")
	defer os.RemoveAll(dir)

	// --- First process lifetime: create and populate a PMO.
	store, err := domainvirt.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := store.Create("inventory", 8<<20, domainvirt.ModeDefault, "demo")
	if err != nil {
		log.Fatal(err)
	}

	// Attach the PMO to this process's address space. Every attached
	// PMO is its own protection domain; here we run without a simulator
	// (nil sink), so the library behaves as a plain persistent heap.
	space := domainvirt.NewSpace(nil)
	if _, err := space.Attach(pool, domainvirt.PermRW, ""); err != nil {
		log.Fatal(err)
	}

	// Allocate a counter record and update it durably: if we crash
	// mid-commit, recovery replays or discards it atomically.
	rec, err := pool.Alloc(16)
	if err != nil {
		log.Fatal(err)
	}
	pool.SetRoot(rec)
	tx, err := domainvirt.Begin(pool)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.WriteU64(rec.Offset(), 42); err != nil {
		log.Fatal(err)
	}
	if err := tx.WriteU64(rec.Offset()+8, 0xC0FFEE); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote record at %v: count=%d tag=%#x\n",
		rec, pool.ReadU64(rec.Offset()), pool.ReadU64(rec.Offset()+8))

	if err := space.Detach(pool); err != nil {
		log.Fatal(err)
	}
	if err := store.Sync(); err != nil {
		log.Fatal(err)
	}

	// --- Second process lifetime: reopen the store and find the data
	// through the pool root (ObjectIDs are relocatable, so the attach
	// base does not matter).
	store2, err := domainvirt.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	pool2, err := store2.Open("inventory", "demo", false)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := domainvirt.Recover(pool2); err != nil {
		log.Fatal(err)
	}
	space2 := domainvirt.NewSpace(nil)
	if _, err := space2.Attach(pool2, domainvirt.PermR, ""); err != nil {
		log.Fatal(err)
	}
	root := pool2.Root()
	fmt.Printf("after reopen:           count=%d tag=%#x\n",
		pool2.ReadU64(root.Offset()), pool2.ReadU64(root.Offset()+8))

	if pool2.ReadU64(root.Offset()) != 42 {
		log.Fatal("persistence failed")
	}
	fmt.Println("quickstart OK")
}
