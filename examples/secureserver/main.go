// Secureserver acts out the paper's motivating scenario (Section I): a
// server keeps each client's private data in its own PMO/domain. A
// handler thread serving one client is compromised — Heartbleed-style —
// and tries to leak and corrupt another client's PMO, and then to reuse a
// SETPERM gadget. Domain-based isolation (here the hardware domain
// virtualization engine on the simulated machine) stops every attempt,
// and the ERIM-style inspector catches the gadget.
//
// Run: go run ./examples/secureserver
package main

import (
	"fmt"
	"log"

	"domainvirt"
)

const (
	siteServerGate = 1 // the one vetted SETPERM site in the "binary"
	siteGadget     = 0xBAD
)

type server struct {
	machine *domainvirt.Machine
	store   *domainvirt.Store
	space   *domainvirt.Space
	clients map[string]*domainvirt.Pool
}

func newServer() *server {
	m := domainvirt.NewMachine(domainvirt.DefaultConfig(), domainvirt.SchemeDomainVirt)
	insp := domainvirt.NewInspector()
	insp.Approve(siteServerGate, "server permission gate")
	m.SetInspector(insp)
	return &server{
		machine: m,
		store:   domainvirt.NewStore(),
		space:   domainvirt.NewSpace(m),
		clients: make(map[string]*domainvirt.Pool),
	}
}

// connect provisions a per-client PMO — one domain per client, so a
// vulnerable library in one handler cannot read another client's secrets.
func (s *server) connect(client string) *domainvirt.Pool {
	p, err := s.store.Create("client-"+client, 8<<20, domainvirt.ModeDefault, "server")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.space.Attach(p, domainvirt.PermRW, ""); err != nil {
		log.Fatal(err)
	}
	s.clients[client] = p
	return p
}

// handle runs fn as the handler thread th with a least-privilege window
// on the client's own PMO.
func (s *server) handle(th domainvirt.ThreadID, client string, fn func(p *domainvirt.Pool)) {
	p := s.clients[client]
	s.space.Thread = th
	if err := s.space.SetPerm(p, domainvirt.PermRW, siteServerGate); err != nil {
		log.Fatal(err)
	}
	fn(p)
	if err := s.space.SetPerm(p, domainvirt.PermNone, siteServerGate); err != nil {
		log.Fatal(err)
	}
}

func main() {
	srv := newServer()
	alice := srv.connect("alice")
	bob := srv.connect("bob")

	// Thread 1 serves alice: store her private key.
	var secretOID domainvirt.OID
	srv.handle(1, "alice", func(p *domainvirt.Pool) {
		o, err := p.Alloc(64)
		if err != nil {
			log.Fatal(err)
		}
		p.WriteU64(o.Offset(), 0x5EC2E7C0DE)
		secretOID = o
	})
	fmt.Println("thread 1 stored alice's secret in her PMO — no faults:",
		len(srv.machine.Faults()) == 0)

	// Thread 2 serves bob, but its handler is compromised. Inside bob's
	// legitimate window it walks out of bounds into alice's PMO.
	srv.handle(2, "bob", func(p *domainvirt.Pool) {
		_, _ = p.Alloc(64) // bob's own data: fine

		// Memory-disclosure attempt: read alice's secret.
		alice.ReadU64(secretOID.Offset())
		// Memory-corruption attempt: overwrite it.
		alice.WriteU64(secretOID.Offset(), 0)
	})
	res := srv.machine.Result()
	fmt.Printf("compromised handler attempts blocked: %d domain faults\n", res.Counters.DomainFaults)
	for _, f := range srv.machine.Faults() {
		fmt.Println("  ", f)
	}

	// Gadget reuse: the attacker cannot inject code, so it jumps to a
	// SETPERM sequence at an unvetted address to grant itself access.
	srv.space.Thread = 2
	if err := srv.space.SetPerm(alice, domainvirt.PermRW, siteGadget); err != nil {
		log.Fatal(err)
	}
	alice.ReadU64(secretOID.Offset()) // still denied: the gate blocked the grant

	res = srv.machine.Result()
	fmt.Printf("gadget SETPERM blocked by inspection: %d violation(s), still %d total faults\n",
		1, res.Counters.DomainFaults)

	// The data survives untouched for alice's next request.
	srv.handle(1, "alice", func(p *domainvirt.Pool) {
		if got := p.ReadU64(secretOID.Offset()); got != 0x5EC2E7C0DE {
			log.Fatalf("secret corrupted: %#x", got)
		}
	})
	fmt.Println("alice's secret intact:", true)
	_ = bob
	fmt.Println("secureserver OK")
}
