// Sweep runs a miniature Figure 6/7: the AVL multi-PMO benchmark swept
// over PMO counts under libmpk, hardware MPK virtualization, and hardware
// domain virtualization, rendered as a log2-scale ASCII chart — the
// paper's headline comparison in under a minute.
//
// Run: go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"

	"domainvirt"
	"domainvirt/internal/report"
)

func main() {
	cfg := domainvirt.DefaultConfig()
	counts := []int{16, 32, 64, 128, 256, 512, 1024}

	s := report.NewSeries("AVL: overhead over lowerbound vs. number of PMOs", "PMOs", "% overhead")
	s.X = counts
	for _, pmos := range counts {
		p := domainvirt.Params{NumPMOs: pmos, Ops: 1500, InitialElems: 512, Seed: 42}
		res, err := domainvirt.RunSchemes("avl", p, cfg,
			domainvirt.SchemeLowerbound, domainvirt.SchemeLibmpk,
			domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt)
		if err != nil {
			log.Fatal(err)
		}
		lb := res[domainvirt.SchemeLowerbound]
		s.Add("libmpk", res[domainvirt.SchemeLibmpk].OverheadPct(lb))
		s.Add("mpkvirt", res[domainvirt.SchemeMPKVirt].OverheadPct(lb))
		s.Add("domainvirt", res[domainvirt.SchemeDomainVirt].OverheadPct(lb))
		fmt.Printf("%4d PMOs: libmpk %8.1f%%  mpkvirt %7.1f%%  domainvirt %6.1f%%\n",
			pmos,
			res[domainvirt.SchemeLibmpk].OverheadPct(lb),
			res[domainvirt.SchemeMPKVirt].OverheadPct(lb),
			res[domainvirt.SchemeDomainVirt].OverheadPct(lb))
	}
	fmt.Println()
	if err := s.RenderChart(os.Stdout, 14); err != nil {
		log.Fatal(err)
	}
	last := len(counts) - 1
	fmt.Printf("\nat %d PMOs, domain virtualization cuts libmpk's overhead by %.0fx\n",
		counts[last], s.Y["libmpk"][last]/s.Y["domainvirt"][last])
}
