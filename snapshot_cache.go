package domainvirt

import (
	"fmt"
	"sync"
	"time"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/sim"
	"domainvirt/internal/tlb"
	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

// structuralConfig is the subset of Config that shapes the machine's
// state trajectory — geometry, not latency. Two configurations with the
// same structuralConfig drive every TLB, cache, page-table, and engine
// structure through identical states for the same event stream; the
// remaining fields (latencies, Costs, CPI, ClockHz) are pure accounting
// and are zeroed by the post-setup ResetStats. That makes one warmup
// snapshot valid across a whole cost-parameter sweep.
type structuralConfig struct {
	cores        int
	l1tlb, l2tlb tlb.Config
	l1dSize      int
	l1dWays      int
	l2Size       int
	l2Ways       int
	nvmBase      memlayout.PA
	dttlbEntries int
	ptlbEntries  int
}

func structuralOf(cfg Config) structuralConfig {
	return structuralConfig{
		cores:        cfg.Cores,
		l1tlb:        cfg.L1TLB,
		l2tlb:        cfg.L2TLB,
		l1dSize:      cfg.L1D.SizeBytes,
		l1dWays:      cfg.L1D.Ways,
		l2Size:       cfg.L2.SizeBytes,
		l2Ways:       cfg.L2.Ways,
		nvmBase:      cfg.Mem.NVMBase,
		dttlbEntries: cfg.DTTLBEntries,
		ptlbEntries:  cfg.PTLBEntries,
	}
}

// snapKey identifies one cacheable warmup: the workload and its resolved
// parameters fix the setup event stream, the scheme fixes the engine,
// and the structural configuration fixes how that stream shapes machine
// state.
type snapKey struct {
	name   string
	p      Params
	scheme Scheme
	sc     structuralConfig
}

type snapEntry struct {
	once sync.Once
	snap *sim.Snapshot
	ok   bool
}

// SnapshotCache shares warmup state across experiment cells: the first
// cell with a given (workload, params, scheme, structural-config) key
// simulates the setup phase once and checkpoints the machine after
// ResetStats; every later cell forks from that checkpoint instead of
// re-simulating the warmup. Results are bit-identical to the uncached
// path. The cache is safe for concurrent use by a grid's worker pool and
// is meant to live across grids (Table VI and Table VII share warmups,
// as do the rows of a cost-parameter ablation).
type SnapshotCache struct {
	mu      sync.Mutex
	entries map[snapKey]*snapEntry
}

// NewSnapshotCache returns an empty warmup snapshot cache.
func NewSnapshotCache() *SnapshotCache {
	return &SnapshotCache{entries: make(map[snapKey]*snapEntry)}
}

func (c *SnapshotCache) entry(k snapKey) *snapEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		e = &snapEntry{}
		c.entries[k] = e
	}
	return e
}

// Len returns the number of cached warmup checkpoints.
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// sinkSwitch delegates the trace.Sink interface to a swappable inner
// sink. A forked cell rebuilds its Go-side workload state (pools, data
// structures, attachments) by running Setup against Discard — no
// simulation — then swaps the restored machine in for the measured Run.
type sinkSwitch struct{ inner trace.Sink }

func (s *sinkSwitch) Instr(th ThreadID, n uint64) { s.inner.Instr(th, n) }
func (s *sinkSwitch) Access(th ThreadID, va VA, size uint32, write bool) bool {
	return s.inner.Access(th, va, size, write)
}
func (s *sinkSwitch) Fetch(th ThreadID, va VA) bool { return s.inner.Fetch(th, va) }
func (s *sinkSwitch) SetPerm(th ThreadID, d DomainID, p Perm, site core.SiteID) {
	s.inner.SetPerm(th, d, p, site)
}
func (s *sinkSwitch) Attach(d DomainID, r memlayout.Region, perm Perm) error {
	return s.inner.Attach(d, r, perm)
}
func (s *sinkSwitch) Detach(d DomainID) { s.inner.Detach(d) }
func (s *sinkSwitch) Fence(th ThreadID) { s.inner.Fence(th) }

// runCachedMachine is runMachine with warmup snapshot reuse. The second
// return value reports whether the cell was served from a cached
// checkpoint (false for the cell that built it, and for fallbacks).
//
// Safety: the fork path replays Setup against a Discard sink, which
// permits everything. That is behaviorally identical to the real setup
// only if the real setup never had an access denied (a denied pool read
// returns zeros and could steer subsequent setup work), so the builder
// demands zero domain and page faults during the simulated setup before
// caching; a faulting setup falls back to the uncached path per cell.
func runCachedMachine(name string, p Params, scheme Scheme, cfg Config, rec *obs.Recorder, cache *SnapshotCache) (Result, bool, error) {
	if cache == nil {
		res, err := runMachine(name, p, scheme, cfg, rec)
		return res, false, err
	}
	w, err := workload.New(name)
	if err != nil {
		return Result{}, false, err
	}
	key := snapKey{name: name, p: p.Defaults(), scheme: scheme, sc: structuralOf(cfg)}
	e := cache.entry(key)
	built := false
	e.once.Do(func() {
		built = true
		bw, err := workload.New(name)
		if err != nil {
			return
		}
		m := sim.NewMachine(cfg, scheme)
		env := workload.NewEnv(m, p)
		if err := bw.Setup(env); err != nil {
			return
		}
		if r := m.Result(); r.Counters.DomainFaults > 0 || r.Counters.PageFaults > 0 {
			return // setup depends on verdicts; not safely forkable
		}
		m.ResetStats()
		e.snap = m.Snapshot()
		e.ok = true
	})
	if !e.ok {
		res, err := runMachine(name, p, scheme, cfg, rec)
		return res, false, err
	}

	// Fork: rebuild Go-side workload state without simulation, then run
	// the measured phase on a machine restored from the checkpoint.
	sw := &sinkSwitch{inner: trace.Discard{}}
	env := workload.NewEnv(sw, p)
	if err := w.Setup(env); err != nil {
		return Result{}, false, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
	}
	m := sim.NewMachine(cfg, scheme)
	m.Restore(e.snap)
	sw.inner = m

	var start time.Time
	if rec != nil {
		rp := env.P
		rec.SetManifest(obs.Manifest{
			Scheme:      string(scheme),
			Workload:    name,
			Seed:        rp.Seed,
			Ops:         rp.Ops,
			Threads:     rp.Threads,
			Cores:       m.NumCores(),
			PMOs:        rp.NumPMOs,
			Epoch:       rec.EpochLen(),
			ConfigHash:  obs.ConfigHash(cfg),
			ToolVersion: obs.ToolVersion,
		})
		m.SetRecorder(rec)
		start = time.Now()
	}
	runErr := w.Run(env)
	if rec != nil {
		rec.StampWall(time.Since(start))
		m.FlushObs()
	}
	if runErr != nil {
		return Result{}, false, fmt.Errorf("domainvirt: %s run under %s: %w", name, scheme, runErr)
	}
	res := m.Result()
	if res.Counters.DomainFaults > 0 || res.Counters.PageFaults > 0 {
		return res, false, fmt.Errorf("domainvirt: %s under %s raised %d domain / %d page faults (first: %v)",
			name, scheme, res.Counters.DomainFaults, res.Counters.PageFaults, m.Faults())
	}
	return res, !built, nil
}

// RunCached is Run with warmup snapshot reuse through cache (nil cache
// falls back to Run). The bool reports a snapshot hit: the warmup phase
// was served from a checkpoint built by an earlier cell with the same
// workload, parameters, scheme, and structural configuration.
func RunCached(name string, p Params, scheme Scheme, cfg Config, cache *SnapshotCache) (Result, bool, error) {
	return runCachedMachine(name, p, scheme, cfg, nil, cache)
}

// RunObservedCached is RunObserved with warmup snapshot reuse. The
// recorder observes the measured phase only, exactly as in RunObserved;
// exports are byte-identical to the uncached path.
func RunObservedCached(name string, p Params, scheme Scheme, cfg Config, o ObsOptions, cache *SnapshotCache) (Result, *Recorder, bool, error) {
	rec := obs.NewRecorder(o)
	res, hit, err := runCachedMachine(name, p, scheme, cfg, rec, cache)
	return res, rec, hit, err
}
