package domainvirt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/sim"
	"domainvirt/internal/snapstore"
	"domainvirt/internal/tlb"
	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

// structuralConfig is the subset of Config that shapes the machine's
// state trajectory — geometry, not latency. Two configurations with the
// same structuralConfig drive every TLB, cache, page-table, and engine
// structure through identical states for the same event stream; the
// remaining fields (latencies, Costs, CPI, ClockHz) are pure accounting
// and are zeroed by the post-setup ResetStats. That makes one warmup
// snapshot valid across a whole cost-parameter sweep.
type structuralConfig struct {
	cores        int
	l1tlb, l2tlb tlb.Config
	l1dSize      int
	l1dWays      int
	l2Size       int
	l2Ways       int
	nvmBase      memlayout.PA
	dttlbEntries int
	ptlbEntries  int
}

func structuralOf(cfg Config) structuralConfig {
	return structuralConfig{
		cores:        cfg.Cores,
		l1tlb:        cfg.L1TLB,
		l2tlb:        cfg.L2TLB,
		l1dSize:      cfg.L1D.SizeBytes,
		l1dWays:      cfg.L1D.Ways,
		l2Size:       cfg.L2.SizeBytes,
		l2Ways:       cfg.L2.Ways,
		nvmBase:      cfg.Mem.NVMBase,
		dttlbEntries: cfg.DTTLBEntries,
		ptlbEntries:  cfg.PTLBEntries,
	}
}

// snapKey identifies one cacheable warmup: the workload and its resolved
// parameters fix the setup event stream, the scheme fixes the engine,
// and the structural configuration fixes how that stream shapes machine
// state.
type snapKey struct {
	name   string
	p      Params
	scheme Scheme
	sc     structuralConfig
}

type snapEntry struct {
	once sync.Once
	snap *sim.Snapshot
	ok   bool
}

// warmupParams normalizes p to its warmup identity: the resolved
// defaults with the ops horizon zeroed. Setup never reads P.Ops (only
// Run does), so cells differing only in run length share one warmup
// checkpoint — the premise of mid-run horizon forking.
func warmupParams(p Params) Params {
	p = p.Defaults()
	p.Ops = 0
	return p
}

// diskKey is the content address of the warmup checkpoint in a
// persistent store: a hash over the full warmup identity plus the codec
// version, so files written by an incompatible codec can never collide
// with current keys (the decoder's version check still guards files
// tampered in place).
func (k snapKey) diskKey() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("warmup|%s|%+v|%s|%+v|codec%d",
		k.name, k.p, k.scheme, k.sc, sim.SnapshotCodecVersion)))
	return hex.EncodeToString(h[:16])
}

// SnapshotKeyFor returns the content-addressed store key of the warmup
// checkpoint for one experiment cell. Coordinator and workers derive the
// same key independently, which is what lets a sweep job name a snapshot
// without shipping it.
func SnapshotKeyFor(name string, p Params, scheme Scheme, cfg Config) string {
	k := snapKey{name: name, p: warmupParams(p), scheme: scheme, sc: structuralOf(cfg)}
	return k.diskKey()
}

// SnapshotCacheStats counts how warmups were served. The ci.sh
// grid-twice gate asserts Warmups == 0 for a second process running
// against a primed -snapshot-dir.
type SnapshotCacheStats struct {
	// Warmups is the number of setup phases actually simulated (cold
	// cells: neither memory nor store had the checkpoint).
	Warmups int
	// MemHits is the number of cells served from an in-memory checkpoint.
	MemHits int
	// DiskHits is the number of checkpoints loaded from the store.
	DiskHits int
	// DiskRejects is the number of store files rejected — truncated,
	// checksum-failing, stale codec version, or geometry-mismatched —
	// and rebuilt.
	DiskRejects int
}

// SnapshotCache shares warmup state across experiment cells: the first
// cell with a given (workload, params, scheme, structural-config) key
// simulates the setup phase once and checkpoints the machine after
// ResetStats; every later cell forks from that checkpoint instead of
// re-simulating the warmup. Results are bit-identical to the uncached
// path. The cache is safe for concurrent use by a grid's worker pool and
// is meant to live across grids (Table VI and Table VII share warmups,
// as do the rows of a cost-parameter ablation).
// When built with NewSnapshotCacheDir, the cache is additionally backed
// by an internal/snapstore directory: checkpoints built in this process
// are encoded and written through, and a cold in-memory entry first
// tries the store — so warmups survive across processes and across the
// workers of a distributed sweep sharing one directory.
type SnapshotCache struct {
	mu      sync.Mutex
	entries map[snapKey]*snapEntry
	store   *snapstore.Store
	stats   SnapshotCacheStats
}

// NewSnapshotCache returns an empty, memory-only warmup snapshot cache.
func NewSnapshotCache() *SnapshotCache {
	return &SnapshotCache{entries: make(map[snapKey]*snapEntry)}
}

// NewSnapshotCacheDir returns a warmup snapshot cache persisted under
// dir (created if needed).
func NewSnapshotCacheDir(dir string) (*SnapshotCache, error) {
	st, err := snapstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &SnapshotCache{entries: make(map[snapKey]*snapEntry), store: st}, nil
}

func (c *SnapshotCache) entry(k snapKey) *snapEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		e = &snapEntry{}
		c.entries[k] = e
	}
	return e
}

// Len returns the number of cached warmup checkpoints.
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the serving counters.
func (c *SnapshotCache) Stats() SnapshotCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *SnapshotCache) count(f func(*SnapshotCacheStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Persistent reports whether the cache is backed by an on-disk store.
func (c *SnapshotCache) Persistent() bool { return c.store != nil }

// HasStored reports whether the backing store holds key. Memory-only
// caches hold nothing.
func (c *SnapshotCache) HasStored(key string) bool {
	return c.store != nil && c.store.Has(key)
}

// GetEncoded returns the stored bytes for key (snapstore.ErrMiss when
// absent or when the cache is memory-only). The bytes are the encoded
// snapshot verbatim; callers decode — and must treat a decode failure as
// a miss.
func (c *SnapshotCache) GetEncoded(key string) ([]byte, error) {
	if c.store == nil {
		return nil, fmt.Errorf("%w: no store", snapstore.ErrMiss)
	}
	return c.store.Get(key)
}

// PutEncoded writes pre-encoded snapshot bytes through to the store
// (no-op for memory-only caches). The sweep tier uses it to install
// snapshots pulled from the coordinator; the horizon layer uses it for
// mid-run checkpoints.
func (c *SnapshotCache) PutEncoded(key string, data []byte) error {
	if c.store == nil {
		return nil
	}
	return c.store.Put(key, data)
}

// loadCheckpoint tries to serve a stored checkpoint (warmup or mid-run)
// under key. A decodable file is validated by a restore into a throwaway
// machine of the cell's geometry, so every later Restore from the
// returned snapshot is panic-free; any rejection deletes the file and
// reports a miss (the caller rebuilds and overwrites). The probe's
// Result is returned alongside — for a mid-run checkpoint it is exactly
// the Result an independent run at that horizon would produce.
func (c *SnapshotCache) loadCheckpoint(key string, cfg Config, scheme Scheme) (*sim.Snapshot, Result, bool) {
	if c.store == nil {
		return nil, Result{}, false
	}
	data, err := c.store.Get(key)
	if err != nil {
		return nil, Result{}, false
	}
	snap, err := sim.DecodeSnapshot(data)
	if err != nil {
		c.count(func(s *SnapshotCacheStats) { s.DiskRejects++ })
		c.store.Delete(key)
		return nil, Result{}, false
	}
	probe := sim.NewMachine(cfg, scheme)
	if err := probe.RestoreSafe(snap); err != nil {
		c.count(func(s *SnapshotCacheStats) { s.DiskRejects++ })
		c.store.Delete(key)
		return nil, Result{}, false
	}
	c.count(func(s *SnapshotCacheStats) { s.DiskHits++ })
	return snap, probe.Result(), true
}

// sinkSwitch delegates the trace.Sink interface to a swappable inner
// sink. A forked cell rebuilds its Go-side workload state (pools, data
// structures, attachments) by running Setup against Discard — no
// simulation — then swaps the restored machine in for the measured Run.
type sinkSwitch struct{ inner trace.Sink }

func (s *sinkSwitch) Instr(th ThreadID, n uint64) { s.inner.Instr(th, n) }
func (s *sinkSwitch) Access(th ThreadID, va VA, size uint32, write bool) bool {
	return s.inner.Access(th, va, size, write)
}
func (s *sinkSwitch) Fetch(th ThreadID, va VA) bool { return s.inner.Fetch(th, va) }
func (s *sinkSwitch) SetPerm(th ThreadID, d DomainID, p Perm, site core.SiteID) {
	s.inner.SetPerm(th, d, p, site)
}
func (s *sinkSwitch) Attach(d DomainID, r memlayout.Region, perm Perm) error {
	return s.inner.Attach(d, r, perm)
}
func (s *sinkSwitch) Detach(d DomainID) { s.inner.Detach(d) }
func (s *sinkSwitch) Fence(th ThreadID) { s.inner.Fence(th) }

// warmupSource reports how a warmup checkpoint was served.
type warmupSource int

const (
	warmupBuilt warmupSource = iota // setup simulated by this call
	warmupDisk                      // loaded from the backing store
	warmupMem                       // already resident in memory
)

// warmup serves (building if needed) the warmup checkpoint for one cell.
// A nil snapshot means the cell's setup is not forkable — the workload
// errored or its setup raised faults — and the caller must fall back to
// the uncached path.
//
// Safety: forked cells replay Setup against a Discard sink, which
// permits everything. That is behaviorally identical to the real setup
// only if the real setup never had an access denied (a denied pool read
// returns zeros and could steer subsequent setup work), so the builder
// demands zero domain and page faults during the simulated setup before
// caching.
func (c *SnapshotCache) warmup(name string, p Params, scheme Scheme, cfg Config) (*sim.Snapshot, warmupSource) {
	key := snapKey{name: name, p: warmupParams(p), scheme: scheme, sc: structuralOf(cfg)}
	e := c.entry(key)
	src := warmupMem
	e.once.Do(func() {
		if snap, _, ok := c.loadCheckpoint(key.diskKey(), cfg, scheme); ok {
			src = warmupDisk
			e.snap = snap
			e.ok = true
			return
		}
		src = warmupBuilt
		c.count(func(s *SnapshotCacheStats) { s.Warmups++ })
		bw, err := workload.New(name)
		if err != nil {
			return
		}
		m := sim.NewMachine(cfg, scheme)
		env := workload.NewEnv(m, p)
		if err := bw.Setup(env); err != nil {
			return
		}
		if r := m.Result(); r.Counters.DomainFaults > 0 || r.Counters.PageFaults > 0 {
			return // setup depends on verdicts; not safely forkable
		}
		m.ResetStats()
		e.snap = m.Snapshot()
		e.ok = true
		if c.store != nil {
			if data, encErr := sim.EncodeSnapshot(e.snap); encErr == nil {
				// Best-effort write-through: a full disk degrades to the
				// in-memory cache, it does not fail the cell.
				_ = c.store.Put(key.diskKey(), data)
			}
		}
	})
	if !e.ok {
		return nil, src
	}
	if src == warmupMem {
		c.count(func(s *SnapshotCacheStats) { s.MemHits++ })
	}
	return e.snap, src
}

// runCachedMachine is runMachine with warmup snapshot reuse. The second
// return value reports whether the cell was served from a cached
// checkpoint (false for the cell that built it, and for fallbacks).
func runCachedMachine(name string, p Params, scheme Scheme, cfg Config, rec *obs.Recorder, cache *SnapshotCache) (Result, bool, error) {
	if cache == nil {
		res, err := runMachine(name, p, scheme, cfg, rec)
		return res, false, err
	}
	w, err := workload.New(name)
	if err != nil {
		return Result{}, false, err
	}
	snap, src := cache.warmup(name, p, scheme, cfg)
	if snap == nil {
		res, err := runMachine(name, p, scheme, cfg, rec)
		return res, false, err
	}

	// Fork: rebuild Go-side workload state without simulation, then run
	// the measured phase on a machine restored from the checkpoint.
	sw := &sinkSwitch{inner: trace.Discard{}}
	env := workload.NewEnv(sw, p)
	if err := w.Setup(env); err != nil {
		return Result{}, false, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
	}
	m := sim.NewMachine(cfg, scheme)
	m.Restore(snap)
	sw.inner = m

	var start time.Time
	if rec != nil {
		rp := env.P
		rec.SetManifest(obs.Manifest{
			Scheme:      string(scheme),
			Workload:    name,
			Seed:        rp.Seed,
			Ops:         rp.Ops,
			Threads:     rp.Threads,
			Cores:       m.NumCores(),
			PMOs:        rp.NumPMOs,
			Epoch:       rec.EpochLen(),
			ConfigHash:  obs.ConfigHash(cfg),
			ToolVersion: obs.ToolVersion,
		})
		m.SetRecorder(rec)
		start = time.Now()
	}
	runErr := w.Run(env)
	if rec != nil {
		rec.StampWall(time.Since(start))
		m.FlushObs()
	}
	if runErr != nil {
		return Result{}, false, fmt.Errorf("domainvirt: %s run under %s: %w", name, scheme, runErr)
	}
	res := m.Result()
	if res.Counters.DomainFaults > 0 || res.Counters.PageFaults > 0 {
		return res, false, fmt.Errorf("domainvirt: %s under %s raised %d domain / %d page faults (first: %v)",
			name, scheme, res.Counters.DomainFaults, res.Counters.PageFaults, m.Faults())
	}
	return res, src != warmupBuilt, nil
}

// RunCached is Run with warmup snapshot reuse through cache (nil cache
// falls back to Run). The bool reports a snapshot hit: the warmup phase
// was served from a checkpoint built by an earlier cell with the same
// workload, parameters, scheme, and structural configuration.
func RunCached(name string, p Params, scheme Scheme, cfg Config, cache *SnapshotCache) (Result, bool, error) {
	return runCachedMachine(name, p, scheme, cfg, nil, cache)
}

// RunObservedCached is RunObserved with warmup snapshot reuse. The
// recorder observes the measured phase only, exactly as in RunObserved;
// exports are byte-identical to the uncached path.
func RunObservedCached(name string, p Params, scheme Scheme, cfg Config, o ObsOptions, cache *SnapshotCache) (Result, *Recorder, bool, error) {
	rec := obs.NewRecorder(o)
	res, hit, err := runCachedMachine(name, p, scheme, cfg, rec, cache)
	return res, rec, hit, err
}
