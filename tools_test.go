package domainvirt_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Integration smoke tests for the command-line tools: build each binary
// once and drive it end to end against temporary stores and traces.

var toolBin = map[string]string{}

func buildTool(t *testing.T, name string) string {
	t.Helper()
	if bin, ok := toolBin[name]; ok {
		return bin
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	toolBin[name] = bin
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

func TestPmoctlEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmoctl")
	store := t.TempDir()

	out := runTool(t, bin, "-store", store, "create", "-name", "sessions", "-size", "8388608", "-owner", "web")
	if !strings.Contains(out, `created pool "sessions"`) {
		t.Fatalf("create output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "ls")
	if !strings.Contains(out, "sessions") {
		t.Fatalf("ls output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "info", "-name", "sessions")
	if !strings.Contains(out, "log area") {
		t.Fatalf("info output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "verify", "-name", "sessions")
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("verify output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "dump", "-name", "sessions", "-off", "0", "-len", "16")
	if !strings.Contains(out, "00000000") {
		t.Fatalf("dump output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "recover", "-name", "sessions")
	if !strings.Contains(out, "clean") {
		t.Fatalf("recover output: %s", out)
	}
	runTool(t, bin, "-store", store, "rm", "-name", "sessions")
	if files, _ := filepath.Glob(filepath.Join(store, "*.pmo")); len(files) != 0 {
		t.Fatalf("pool file survived rm: %v", files)
	}
}

func TestPmotraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmotrace")
	tr := filepath.Join(t.TempDir(), "x.trace")

	out := runTool(t, bin, "record", "-workload", "ss", "-pmos", "16", "-ops", "200", "-init", "128", "-o", tr)
	if !strings.Contains(out, "recorded ss") {
		t.Fatalf("record output: %s", out)
	}
	if fi, err := os.Stat(tr); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	out = runTool(t, bin, "stat", "-i", tr)
	if !strings.Contains(out, "SETPERMs") {
		t.Fatalf("stat output: %s", out)
	}
	out = runTool(t, bin, "audit", "-i", tr)
	if !strings.Contains(out, "discipline holds") {
		t.Fatalf("audit output: %s", out)
	}
	for _, scheme := range []string{"libmpk", "mpkvirt", "domainvirt"} {
		out = runTool(t, bin, "replay", "-i", tr, "-scheme", scheme)
		if !strings.Contains(out, "domain/page faults: 0 / 0") {
			t.Fatalf("replay under %s: %s", scheme, out)
		}
	}
}

func TestPmosimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmosim")
	out := runTool(t, bin, "-workload", "rbt", "-scheme", "domainvirt", "-pmos", "32", "-ops", "300", "-init", "128")
	if !strings.Contains(out, "permission switches") {
		t.Fatalf("pmosim output: %s", out)
	}
	out = runTool(t, bin, "-workload", "rbt", "-pmos", "32", "-ops", "300", "-init", "128", "-compare")
	for _, want := range []string{"baseline", "lowerbound", "libmpk", "mpkvirt", "domainvirt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %s: %s", want, out)
		}
	}
}

func TestPmobenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmobench")
	csv := t.TempDir()
	out := runTool(t, bin, "-experiment", "table8", "-csv", csv)
	if !strings.Contains(out, "Table VIII") {
		t.Fatalf("pmobench output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(csv, "table8.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}
