package domainvirt_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Integration smoke tests for the command-line tools: build each binary
// once and drive it end to end against temporary stores and traces.

var (
	toolBin    = map[string]string{}
	toolBinDir string
)

// buildTool caches binaries for the whole test run, so they must live
// in a package-lifetime directory, not a t.TempDir() that vanishes when
// the first test using the tool finishes.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	if bin, ok := toolBin[name]; ok {
		return bin
	}
	if toolBinDir == "" {
		dir, err := os.MkdirTemp("", "domainvirt-tools-")
		if err != nil {
			t.Fatal(err)
		}
		toolBinDir = dir
	}
	bin := filepath.Join(toolBinDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	toolBin[name] = bin
	return bin
}

func TestMain(m *testing.M) {
	code := m.Run()
	if toolBinDir != "" {
		os.RemoveAll(toolBinDir)
	}
	os.Exit(code)
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

func TestPmoctlEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmoctl")
	store := t.TempDir()

	out := runTool(t, bin, "-store", store, "create", "-name", "sessions", "-size", "8388608", "-owner", "web")
	if !strings.Contains(out, `created pool "sessions"`) {
		t.Fatalf("create output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "ls")
	if !strings.Contains(out, "sessions") {
		t.Fatalf("ls output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "info", "-name", "sessions")
	if !strings.Contains(out, "log area") {
		t.Fatalf("info output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "verify", "-name", "sessions")
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("verify output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "dump", "-name", "sessions", "-off", "0", "-len", "16")
	if !strings.Contains(out, "00000000") {
		t.Fatalf("dump output: %s", out)
	}
	out = runTool(t, bin, "-store", store, "recover", "-name", "sessions")
	if !strings.Contains(out, "clean") {
		t.Fatalf("recover output: %s", out)
	}
	runTool(t, bin, "-store", store, "rm", "-name", "sessions")
	if files, _ := filepath.Glob(filepath.Join(store, "*.pmo")); len(files) != 0 {
		t.Fatalf("pool file survived rm: %v", files)
	}
}

func TestPmotraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmotrace")
	tr := filepath.Join(t.TempDir(), "x.trace")

	out := runTool(t, bin, "record", "-workload", "ss", "-pmos", "16", "-ops", "200", "-init", "128", "-o", tr)
	if !strings.Contains(out, "recorded ss") {
		t.Fatalf("record output: %s", out)
	}
	if fi, err := os.Stat(tr); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	out = runTool(t, bin, "stat", "-i", tr)
	if !strings.Contains(out, "SETPERMs") {
		t.Fatalf("stat output: %s", out)
	}
	out = runTool(t, bin, "audit", "-i", tr)
	if !strings.Contains(out, "discipline holds") {
		t.Fatalf("audit output: %s", out)
	}
	for _, scheme := range []string{"libmpk", "mpkvirt", "domainvirt"} {
		out = runTool(t, bin, "replay", "-i", tr, "-scheme", scheme)
		if !strings.Contains(out, "domain/page faults: 0 / 0") {
			t.Fatalf("replay under %s: %s", scheme, out)
		}
	}
}

func TestPmosimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmosim")
	out := runTool(t, bin, "-workload", "rbt", "-scheme", "domainvirt", "-pmos", "32", "-ops", "300", "-init", "128")
	if !strings.Contains(out, "permission switches") {
		t.Fatalf("pmosim output: %s", out)
	}
	out = runTool(t, bin, "-workload", "rbt", "-pmos", "32", "-ops", "300", "-init", "128", "-compare")
	for _, want := range []string{"baseline", "lowerbound", "libmpk", "mpkvirt", "domainvirt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %s: %s", want, out)
		}
	}
}

func TestPmosimObsAndProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmosim")
	dir := t.TempDir()
	obsDir := filepath.Join(dir, "obs")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := runTool(t, bin, "-workload", "avl", "-scheme", "mpkvirt", "-pmos", "64",
		"-ops", "2000", "-init", "256",
		"-obs-out", obsDir, "-obs-epoch", "5000",
		"-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(out, "observability:") || !strings.Contains(out, "wrote ") {
		t.Fatalf("obs output missing written-path report: %s", out)
	}
	for _, name := range []string{
		"avl-mpkvirt-manifest.json", "avl-mpkvirt-series.jsonl",
		"avl-mpkvirt-series.csv", "avl-mpkvirt-metrics.prom",
	} {
		if fi, err := os.Stat(filepath.Join(obsDir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("export %s missing or empty: %v", name, err)
		}
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", filepath.Base(p), err)
		}
	}
}

func TestPmobenchProgressAndObs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmobench")
	dir := t.TempDir()
	csv := filepath.Join(dir, "csv")
	obsDir := filepath.Join(dir, "obs")
	out := runTool(t, bin, "-experiment", "table6", "-ops", "400",
		"-csv", csv, "-obs-out", obsDir, "-obs-epoch", "2000")
	if !strings.Contains(out, "pmobench: experiment=table6") {
		t.Fatalf("missing start banner: %s", out)
	}
	if !strings.Contains(out, "[10/10] ") {
		t.Fatalf("missing per-cell progress lines: %s", out)
	}
	if !strings.Contains(out, "wrote "+filepath.Join(csv, "table6.csv")) {
		t.Fatalf("missing written CSV path: %s", out)
	}
	manifests, _ := filepath.Glob(filepath.Join(obsDir, "table6", "manifest-*.json"))
	if len(manifests) != 10 {
		t.Errorf("table6 obs dir has %d manifests, want 10", len(manifests))
	}
	hists, _ := filepath.Glob(filepath.Join(obsDir, "table6", "hist-*.prom"))
	if len(hists) != 2 {
		t.Errorf("table6 obs dir has %d scheme histograms, want 2", len(hists))
	}
}

func TestCheckJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := filepath.Join(t.TempDir(), "checkjsonl")
	cmd := exec.Command("go", "build", "-o", bin, "./scripts/checkjsonl")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building checkjsonl: %v\n%s", err, out)
	}
	good := filepath.Join(t.TempDir(), "good.jsonl")
	if err := os.WriteFile(good, []byte("{\"a\":1}\n{\"b\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, bin, "-min-lines", "2", good)
	if !strings.Contains(out, "2 valid JSONL lines") {
		t.Fatalf("checkjsonl output: %s", out)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"a\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, bad).Run(); err == nil {
		t.Fatalf("checkjsonl accepted malformed JSONL")
	}
}

func TestPmobenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmobench")
	csv := t.TempDir()
	out := runTool(t, bin, "-experiment", "table8", "-csv", csv)
	if !strings.Contains(out, "Table VIII") {
		t.Fatalf("pmobench output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(csv, "table8.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}
