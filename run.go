package domainvirt

import (
	"fmt"
	"time"

	"domainvirt/internal/obs"
	"domainvirt/internal/sim"
	"domainvirt/internal/workload"
)

// Run executes one workload under one protection scheme: build a machine,
// set up the workload (warming caches and tables), reset statistics, and
// run the measured operations. The same Params.Seed yields the identical
// event stream under every scheme, as the paper's trace-replay
// methodology requires.
func Run(name string, p Params, scheme Scheme, cfg Config) (Result, error) {
	return runMachine(name, p, scheme, cfg, nil)
}

// RunObserved is Run with an observability recorder attached for the
// measured phase: the returned Recorder holds the epoch time series,
// the per-access and per-SETPERM latency histograms, and a stamped run
// manifest (including the wall-clock duration of the measured phase,
// stamped here — never inside the simulator). The recorder is passive:
// the Result is identical to what Run returns for the same arguments.
func RunObserved(name string, p Params, scheme Scheme, cfg Config, o ObsOptions) (Result, *Recorder, error) {
	rec := obs.NewRecorder(o)
	res, err := runMachine(name, p, scheme, cfg, rec)
	return res, rec, err
}

func runMachine(name string, p Params, scheme Scheme, cfg Config, rec *obs.Recorder) (Result, error) {
	w, err := workload.New(name)
	if err != nil {
		return Result{}, err
	}
	m := sim.NewMachine(cfg, scheme)
	env := workload.NewEnv(m, p)
	if err := w.Setup(env); err != nil {
		return Result{}, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
	}
	m.ResetStats()
	var start time.Time
	if rec != nil {
		// The manifest records the resolved (default-filled) parameters.
		rp := env.P
		rec.SetManifest(obs.Manifest{
			Scheme:      string(scheme),
			Workload:    name,
			Seed:        rp.Seed,
			Ops:         rp.Ops,
			Threads:     rp.Threads,
			Cores:       m.NumCores(),
			PMOs:        rp.NumPMOs,
			Epoch:       rec.EpochLen(),
			ConfigHash:  obs.ConfigHash(cfg),
			ToolVersion: obs.ToolVersion,
		})
		m.SetRecorder(rec)
		start = time.Now()
	}
	runErr := w.Run(env)
	if rec != nil {
		rec.StampWall(time.Since(start))
		m.FlushObs()
	}
	if runErr != nil {
		return Result{}, fmt.Errorf("domainvirt: %s run under %s: %w", name, scheme, runErr)
	}
	res := m.Result()
	if res.Counters.DomainFaults > 0 || res.Counters.PageFaults > 0 {
		return res, fmt.Errorf("domainvirt: %s under %s raised %d domain / %d page faults (first: %v)",
			name, scheme, res.Counters.DomainFaults, res.Counters.PageFaults, m.Faults())
	}
	return res, nil
}

// RunSchemes executes the workload once per scheme with identical
// parameters and returns the results keyed by scheme.
func RunSchemes(name string, p Params, cfg Config, schemes ...Scheme) (map[Scheme]Result, error) {
	out := make(map[Scheme]Result, len(schemes))
	for _, s := range schemes {
		r, err := Run(name, p, s, cfg)
		if err != nil {
			return nil, err
		}
		out[s] = r
	}
	return out, nil
}

// RunSchemesOpt is RunSchemes on the experiment machinery: the per-scheme
// cells run on opt's bounded worker pool (opt.Workers) with warmup
// snapshot reuse through opt.Snapshots, using opt.Cfg as the machine
// configuration. Results are identical to RunSchemes — only wall-clock
// time changes.
func RunSchemesOpt(name string, p Params, opt ExpOptions, schemes ...Scheme) (map[Scheme]Result, error) {
	cells := make([]expCell, 0, len(schemes))
	for _, s := range schemes {
		cells = append(cells, expCell{name, p, s})
	}
	grid, err := runGrid(opt, cells)
	if err != nil {
		return nil, err
	}
	return grid.at(name, p), nil
}

// OverheadPct returns the percent execution-time overhead of r over base.
func OverheadPct(r, base Result) float64 { return r.OverheadPct(base) }
