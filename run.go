package domainvirt

import (
	"fmt"

	"domainvirt/internal/sim"
	"domainvirt/internal/workload"
)

// Run executes one workload under one protection scheme: build a machine,
// set up the workload (warming caches and tables), reset statistics, and
// run the measured operations. The same Params.Seed yields the identical
// event stream under every scheme, as the paper's trace-replay
// methodology requires.
func Run(name string, p Params, scheme Scheme, cfg Config) (Result, error) {
	w, err := workload.New(name)
	if err != nil {
		return Result{}, err
	}
	m := sim.NewMachine(cfg, scheme)
	env := workload.NewEnv(m, p)
	if err := w.Setup(env); err != nil {
		return Result{}, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
	}
	m.ResetStats()
	if err := w.Run(env); err != nil {
		return Result{}, fmt.Errorf("domainvirt: %s run under %s: %w", name, scheme, err)
	}
	res := m.Result()
	if res.Counters.DomainFaults > 0 || res.Counters.PageFaults > 0 {
		return res, fmt.Errorf("domainvirt: %s under %s raised %d domain / %d page faults (first: %v)",
			name, scheme, res.Counters.DomainFaults, res.Counters.PageFaults, m.Faults())
	}
	return res, nil
}

// RunSchemes executes the workload once per scheme with identical
// parameters and returns the results keyed by scheme.
func RunSchemes(name string, p Params, cfg Config, schemes ...Scheme) (map[Scheme]Result, error) {
	out := make(map[Scheme]Result, len(schemes))
	for _, s := range schemes {
		r, err := Run(name, p, s, cfg)
		if err != nil {
			return nil, err
		}
		out[s] = r
	}
	return out, nil
}

// OverheadPct returns the percent execution-time overhead of r over base.
func OverheadPct(r, base Result) float64 { return r.OverheadPct(base) }
