package domainvirt_test

import (
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"domainvirt"
	"domainvirt/internal/sweep"
)

// startSweepWorker runs an in-process pmoworker with its own snapshot
// cache (persistent under dir when non-empty) and returns its address.
// wrap, when non-nil, intercepts the cell runner (for failure injection).
func startSweepWorker(t *testing.T, dir string, wrap func(run sweep.Runner) sweep.Runner) (string, *domainvirt.SnapshotCache) {
	t.Helper()
	var cache *domainvirt.SnapshotCache
	var err error
	if dir != "" {
		cache, err = domainvirt.NewSnapshotCacheDir(dir)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		cache = domainvirt.NewSnapshotCache()
	}
	run := func(spec []byte, fetch sweep.Fetch) ([]byte, error) {
		return domainvirt.RunSweepCell(spec, cache, fetch)
	}
	if wrap != nil {
		run = wrap(run)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &sweep.Server{Run: run}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); lis.Close() })
	return lis.Addr().String(), cache
}

// sweepOpt returns a small grid configuration suitable for an
// end-to-end distributed run.
func sweepOpt(t *testing.T, obsDir string) domainvirt.ExpOptions {
	t.Helper()
	opt := domainvirt.DefaultExpOptions()
	opt.MicroOps = 300
	opt.MicroInit = 64
	opt.WhisperOps = 300
	opt.WhisperInit = 128
	opt.PMOCounts = []int{16, 64}
	opt.Snapshots = domainvirt.NewSnapshotCache()
	if obsDir != "" {
		opt.Obs = domainvirt.ExpObs{Dir: obsDir, Epoch: 20000}
	}
	return opt
}

// dirBytes reads every file under dir keyed by relative path.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// diffDirs asserts two export directories are byte-identical.
func diffDirs(t *testing.T, seq, dist string) {
	t.Helper()
	a, b := dirBytes(t, seq), dirBytes(t, dist)
	if len(a) == 0 {
		t.Fatal("sequential export produced no files")
	}
	for rel, want := range a {
		got, ok := b[rel]
		if !ok {
			t.Errorf("distributed export missing %s", rel)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("distributed export %s differs from sequential (%d vs %d bytes)", rel, len(got), len(want))
		}
	}
	for rel := range b {
		if _, ok := a[rel]; !ok {
			t.Errorf("distributed export has extra file %s", rel)
		}
	}
}

// TestDistributedSweepByteIdentity is the fan-out referee: a Table VI
// grid with observability export distributed over two workers must
// produce row-for-row identical tables and byte-identical manifests,
// epoch series, and histogram files versus the sequential local path.
func TestDistributedSweepByteIdentity(t *testing.T) {
	seqDir := filepath.Join(t.TempDir(), "seq")
	distDir := filepath.Join(t.TempDir(), "dist")

	seqOpt := sweepOpt(t, seqDir)
	seqOpt.Workers = 1
	wantRows, err := domainvirt.Table6(seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	w1, _ := startSweepWorker(t, "", nil)
	w2, _ := startSweepWorker(t, "", nil)
	distOpt := sweepOpt(t, distDir)
	distOpt.SweepAddrs = []string{w1, w2}
	distOpt.SweepConns = 2
	gotRows, err := domainvirt.Table6(distOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRows, wantRows) {
		t.Errorf("distributed Table VI differs:\n got: %+v\nwant: %+v", gotRows, wantRows)
	}
	diffDirs(t, seqDir, distDir)
}

// TestDistributedSweepWorkerLoss kills one of two workers on its second
// cell, mid-sweep; the coordinator must degrade to local re-execution
// for the lost cells and still match the sequential run byte-for-byte.
func TestDistributedSweepWorkerLoss(t *testing.T) {
	seqDir := filepath.Join(t.TempDir(), "seq")
	distDir := filepath.Join(t.TempDir(), "dist")

	seqOpt := sweepOpt(t, seqDir)
	seqOpt.Workers = 1
	wantRows, err := domainvirt.Table6(seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	var cells atomic.Int32
	dying, _ := startSweepWorker(t, "", func(run sweep.Runner) sweep.Runner {
		return func(spec []byte, fetch sweep.Fetch) ([]byte, error) {
			if cells.Add(1) >= 2 {
				panic("injected worker death") // tears down the connection mid-sweep
			}
			return run(spec, fetch)
		}
	})
	healthy, _ := startSweepWorker(t, "", nil)
	distOpt := sweepOpt(t, distDir)
	distOpt.SweepAddrs = []string{dying, healthy}
	gotRows, err := domainvirt.Table6(distOpt)
	if err != nil {
		t.Fatal(err)
	}
	if cells.Load() < 2 {
		t.Fatal("dying worker never reached its death cell")
	}
	if !reflect.DeepEqual(gotRows, wantRows) {
		t.Errorf("post-loss Table VI differs:\n got: %+v\nwant: %+v", gotRows, wantRows)
	}
	diffDirs(t, seqDir, distDir)
}

// TestDistributedSweepSnapshotPull: workers with empty persistent stores
// pull warmup checkpoints from a coordinator whose store is primed —
// zero warmup re-simulations anywhere in the fleet.
func TestDistributedSweepSnapshotPull(t *testing.T) {
	coordDir := t.TempDir()
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()

	// Prime the coordinator's store with both schemes' warmups.
	prime, err := domainvirt.NewSnapshotCacheDir(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []domainvirt.Scheme{domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound}
	for _, s := range schemes {
		if _, _, err := domainvirt.RunCached("avl", p, s, cfg, prime); err != nil {
			t.Fatal(err)
		}
	}

	workerDir := t.TempDir()
	addr, wcache := startSweepWorker(t, workerDir, nil)
	coord, err := domainvirt.NewSnapshotCacheDir(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	opt := domainvirt.DefaultExpOptions()
	opt.Snapshots = coord
	opt.SweepAddrs = []string{addr}

	want, err := domainvirt.RunSchemes("avl", p, cfg, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := domainvirt.RunSchemesOpt("avl", p, opt, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		if got[s] != want[s] {
			t.Errorf("pulled-snapshot result differs under %s:\n got: %+v\nwant: %+v", s, got[s], want[s])
		}
	}
	if st := wcache.Stats(); st.Warmups != 0 || st.DiskHits != len(schemes) {
		t.Errorf("worker stats = %+v, want 0 warmups and %d pulled-snapshot hits", st, len(schemes))
	}
	matches, err := filepath.Glob(filepath.Join(workerDir, "*.pmosnap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(schemes) {
		t.Errorf("worker store holds %d snapshots, want %d pulled files", len(matches), len(schemes))
	}
}
