// Benchmarks regenerating the paper's tables and figures as testing.B
// benchmarks: each reports the paper's headline numbers (overhead
// percentages, speedups, switch rates) as custom benchmark metrics while
// measuring simulation throughput. The full harness with charts is
// cmd/pmobench; EXPERIMENTS.md records paper-vs-measured for every entry.
package domainvirt_test

import (
	"testing"

	"domainvirt"
	"domainvirt/internal/stats"
)

// benchRun executes one workload/scheme pair with b.N measured operations.
func benchRun(b *testing.B, name string, p domainvirt.Params, scheme domainvirt.Scheme) domainvirt.Result {
	b.Helper()
	p.Ops = b.N
	res, err := domainvirt.Run(name, p, scheme, domainvirt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func whisperParams() domainvirt.Params {
	return domainvirt.Params{NumPMOs: 1, InitialElems: 1000, PoolSize: 2 << 30, Seed: 42}
}

func microParams(pmos int) domainvirt.Params {
	return domainvirt.Params{NumPMOs: pmos, InitialElems: 1024, Seed: 42}
}

// BenchmarkTableV: single-PMO WHISPER overheads of MPK, hardware MPK
// virtualization, and hardware domain virtualization.
func BenchmarkTableV(b *testing.B) {
	for _, wl := range domainvirt.WhisperBenchmarks {
		b.Run(wl, func(b *testing.B) {
			base := benchRun(b, wl, whisperParams(), domainvirt.SchemeBaseline)
			mpk := benchRun(b, wl, whisperParams(), domainvirt.SchemeMPK)
			mv := benchRun(b, wl, whisperParams(), domainvirt.SchemeMPKVirt)
			dv := benchRun(b, wl, whisperParams(), domainvirt.SchemeDomainVirt)
			b.ReportMetric(mpk.SwitchesPerSec(domainvirt.DefaultConfig().ClockHz), "switches/sec")
			b.ReportMetric(mpk.OverheadPct(base), "mpk_%ovh")
			b.ReportMetric(mv.OverheadPct(base), "mpkvirt_%ovh")
			b.ReportMetric(dv.OverheadPct(base), "domvirt_%ovh")
		})
	}
}

// BenchmarkTableVI: multi-PMO lowerbound overheads and switch rates at
// 1024 PMOs.
func BenchmarkTableVI(b *testing.B) {
	for _, wl := range domainvirt.MicroBenchmarks {
		b.Run(wl, func(b *testing.B) {
			base := benchRun(b, wl, microParams(1024), domainvirt.SchemeBaseline)
			lb := benchRun(b, wl, microParams(1024), domainvirt.SchemeLowerbound)
			b.ReportMetric(lb.SwitchesPerSec(domainvirt.DefaultConfig().ClockHz), "switches/sec")
			b.ReportMetric(lb.OverheadPct(base), "lowerbound_%ovh")
		})
	}
}

// BenchmarkFigure6: per-benchmark overhead-over-lowerbound at three sweep
// points (the full stride-16 sweep is cmd/pmobench -paper).
func BenchmarkFigure6(b *testing.B) {
	for _, wl := range domainvirt.MicroBenchmarks {
		for _, pmos := range []int{16, 128, 1024} {
			b.Run(benchName(wl, pmos), func(b *testing.B) {
				lb := benchRun(b, wl, microParams(pmos), domainvirt.SchemeLowerbound)
				lib := benchRun(b, wl, microParams(pmos), domainvirt.SchemeLibmpk)
				mv := benchRun(b, wl, microParams(pmos), domainvirt.SchemeMPKVirt)
				dv := benchRun(b, wl, microParams(pmos), domainvirt.SchemeDomainVirt)
				b.ReportMetric(lib.OverheadPct(lb), "libmpk_%ovh")
				b.ReportMetric(mv.OverheadPct(lb), "mpkvirt_%ovh")
				b.ReportMetric(dv.OverheadPct(lb), "domvirt_%ovh")
			})
		}
	}
}

// BenchmarkFigure7: cross-benchmark average overheads and the headline
// speedups over libmpk at 64 and 1024 PMOs.
func BenchmarkFigure7(b *testing.B) {
	for _, pmos := range []int{64, 1024} {
		b.Run(benchName("avg", pmos), func(b *testing.B) {
			var lib, mv, dv float64
			for _, wl := range domainvirt.MicroBenchmarks {
				lb := benchRun(b, wl, microParams(pmos), domainvirt.SchemeLowerbound)
				lib += benchRun(b, wl, microParams(pmos), domainvirt.SchemeLibmpk).OverheadPct(lb)
				mv += benchRun(b, wl, microParams(pmos), domainvirt.SchemeMPKVirt).OverheadPct(lb)
				dv += benchRun(b, wl, microParams(pmos), domainvirt.SchemeDomainVirt).OverheadPct(lb)
			}
			n := float64(len(domainvirt.MicroBenchmarks))
			lib, mv, dv = lib/n, mv/n, dv/n
			b.ReportMetric(lib, "libmpk_%ovh")
			b.ReportMetric(mv, "mpkvirt_%ovh")
			b.ReportMetric(dv, "domvirt_%ovh")
			if mv > 0 {
				b.ReportMetric(lib/mv, "mpkvirt_speedupx")
			}
			if dv > 0 {
				b.ReportMetric(lib/dv, "domvirt_speedupx")
			}
		})
	}
}

// BenchmarkTableVII: the overhead breakdown of both hardware designs at
// 1024 PMOs, reported as percent of baseline execution time.
func BenchmarkTableVII(b *testing.B) {
	for _, wl := range domainvirt.MicroBenchmarks {
		b.Run(wl, func(b *testing.B) {
			base := benchRun(b, wl, microParams(1024), domainvirt.SchemeBaseline)
			mv := benchRun(b, wl, microParams(1024), domainvirt.SchemeMPKVirt)
			dv := benchRun(b, wl, microParams(1024), domainvirt.SchemeDomainVirt)
			pct := func(r domainvirt.Result, c stats.Category) float64 {
				return 100 * float64(r.Breakdown.Cycles[c]) / float64(base.Cycles)
			}
			b.ReportMetric(pct(mv, stats.CatPermSwitch), "mv_perm_%")
			b.ReportMetric(pct(mv, stats.CatEntryChange), "mv_entry_%")
			b.ReportMetric(pct(mv, stats.CatDTTMiss), "mv_dttmiss_%")
			b.ReportMetric(pct(mv, stats.CatTLBInval), "mv_tlbinval_%")
			b.ReportMetric(mv.OverheadPct(base), "mv_total_%")
			b.ReportMetric(pct(dv, stats.CatPTLBMiss), "dv_ptlbmiss_%")
			b.ReportMetric(pct(dv, stats.CatPTLBAccess), "dv_access_%")
			b.ReportMetric(dv.OverheadPct(base), "dv_total_%")
		})
	}
}

// BenchmarkTableVIII: area overheads are analytic; this reports the
// hardware budget as metrics (bytes per core and per process).
func BenchmarkTableVIII(b *testing.B) {
	cfg := domainvirt.DefaultConfig()
	for i := 0; i < b.N; i++ {
		_ = domainvirt.Table8Report(cfg)
	}
	b.ReportMetric(float64(cfg.DTTLBEntries*76)/8, "dttlb_bytes/core")
	b.ReportMetric(float64(cfg.PTLBEntries*12)/8, "ptlb_bytes/core")
	b.ReportMetric(256, "dtt_KB/process")
	b.ReportMetric(256+16, "drt+pt_KB/process")
	b.ReportMetric(float64((cfg.L1TLB.Entries+cfg.L2TLB.Entries)*6)/8, "tlb_ext_bytes/core")
}

// BenchmarkSimThroughput measures raw simulator speed: simulated
// operations per second for each scheme on the AVL workload.
func BenchmarkSimThroughput(b *testing.B) {
	for _, s := range []domainvirt.Scheme{
		domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound,
		domainvirt.SchemeLibmpk, domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt,
	} {
		b.Run(string(s), func(b *testing.B) {
			res := benchRun(b, "avl", microParams(128), s)
			b.ReportMetric(float64(res.Counters.Loads+res.Counters.Stores)/float64(b.N), "accesses/op")
		})
	}
}

// benchTable5Options is the fixed workload used by the sequential and
// parallel Table V benchmarks, sized so one full table takes long
// enough to amortize pool startup.
func benchTable5Options(workers int) domainvirt.ExpOptions {
	opt := domainvirt.DefaultExpOptions()
	opt.WhisperOps = 4000
	opt.WhisperInit = 1000
	opt.Workers = workers
	return opt
}

// BenchmarkTable5Sequential: the full Table V grid (6 benchmarks x 4
// schemes) with all cells run inline on one goroutine.
func BenchmarkTable5Sequential(b *testing.B) {
	opt := benchTable5Options(1)
	for i := 0; i < b.N; i++ {
		if _, err := domainvirt.Table5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Parallel: the same grid fanned across a GOMAXPROCS
// worker pool. Compare ns/op against BenchmarkTable5Sequential for the
// wall-clock speedup; EXPERIMENTS.md records measured numbers.
func BenchmarkTable5Parallel(b *testing.B) {
	opt := benchTable5Options(0)
	for i := 0; i < b.N; i++ {
		if _, err := domainvirt.Table5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(wl string, pmos int) string {
	switch pmos {
	case 16:
		return wl + "/pmos=16"
	case 64:
		return wl + "/pmos=64"
	case 128:
		return wl + "/pmos=128"
	default:
		return wl + "/pmos=1024"
	}
}
