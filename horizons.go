package domainvirt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"domainvirt/internal/obs"
	"domainvirt/internal/report"
	"domainvirt/internal/sim"
	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

// Mid-run checkpoint forking: sweep rows that differ only in the ops
// horizon share one warmup AND one measured pass. Every workload's Run
// loop reports each finished operation through Env.OpDone, so the
// machine can be checkpointed at interior operation boundaries; the
// Result captured at the end of op h is bit-identical to a full
// independent run with Ops=h, because op streams are prefix-stable (op
// i consumes the same RNG draws and emits the same events regardless of
// how many ops follow it).

// HorizonKeyFor is the content address of a mid-run checkpoint: the
// machine state at the end of operation `ops` of the measured phase.
// Unlike the warmup key, it hashes the FULL configuration — measured
// cycles embed every cost parameter, so a mid-run checkpoint is only
// valid for the exact config that produced it — plus the codec version.
func HorizonKeyFor(name string, p Params, scheme Scheme, cfg Config, ops int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("horizon|%s|%+v|%s|cfg%s|ops%d|codec%d",
		name, warmupParams(p), scheme, obs.ConfigHash(cfg), ops, sim.SnapshotCodecVersion)))
	return hex.EncodeToString(h[:16])
}

// RunHorizons runs one workload under one scheme at every ops horizon in
// horizons (strictly ascending), returning one Result per horizon.
// Instead of len(horizons) full simulations it performs at most one: a
// single measured pass to the largest horizon, reading the machine's
// counters at each interior boundary. Results are bit-identical to
// independent Run calls with p.Ops set per horizon.
//
// With a persistent cache, every horizon's machine state is also stored
// as a mid-run checkpoint: a later process re-running the sweep serves
// completed horizons straight from disk and resumes simulation from the
// deepest stored checkpoint at or below its first missing horizon —
// never re-simulating the prefix. A nil cache still gets the
// one-pass-many-horizons win, just without persistence.
func RunHorizons(name string, p Params, scheme Scheme, cfg Config, horizons []int, cache *SnapshotCache) ([]Result, error) {
	p = p.Defaults()
	if len(horizons) == 0 {
		return nil, fmt.Errorf("domainvirt: RunHorizons: empty horizon list")
	}
	for i, h := range horizons {
		if h <= 0 {
			return nil, fmt.Errorf("domainvirt: RunHorizons: horizon %d is not positive", h)
		}
		if i > 0 && h <= horizons[i-1] {
			return nil, fmt.Errorf("domainvirt: RunHorizons: horizons must be strictly ascending (%d after %d)",
				h, horizons[i-1])
		}
	}
	results := make([]Result, len(horizons))
	have := make([]bool, len(horizons))
	byOp := make(map[int]int, len(horizons))
	for i, h := range horizons {
		byOp[h] = i
	}

	// Phase 1: serve stored mid-run checkpoints. The resume point is the
	// deepest stored horizon with no gap before it — resuming past a
	// missing horizon would skip its capture.
	persistent := cache != nil && cache.Persistent()
	resumeOp := 0
	var resumeSnap *sim.Snapshot
	if persistent {
		contiguous := true
		for idx, h := range horizons {
			snap, res, ok := cache.loadCheckpoint(HorizonKeyFor(name, p, scheme, cfg, h), cfg, scheme)
			if !ok {
				contiguous = false
				continue
			}
			results[idx] = res
			have[idx] = true
			if contiguous {
				resumeOp, resumeSnap = h, snap
			}
		}
	}
	target := 0
	for i, h := range horizons {
		if !have[i] {
			target = h
		}
	}
	if target == 0 {
		return results, nil // every horizon served from stored checkpoints
	}

	// Phase 2: one pass to the largest missing horizon.
	w, err := workload.New(name)
	if err != nil {
		return nil, err
	}
	runP := p
	runP.Ops = target
	persistOK := persistent
	var (
		m   *sim.Machine
		sw  *sinkSwitch
		env *workload.Env
	)
	switch {
	case resumeSnap != nil:
		// Resume: machine state comes from the stored checkpoint; the
		// Go-side workload state is rebuilt by replaying setup and the
		// first resumeOp measured ops against Discard (no simulation).
		m = sim.NewMachine(cfg, scheme)
		if err := m.RestoreSafe(resumeSnap); err != nil {
			return nil, fmt.Errorf("domainvirt: %s resume under %s: %w", name, scheme, err)
		}
		sw = &sinkSwitch{inner: trace.Discard{}}
		env = workload.NewEnv(sw, runP)
		if err := w.Setup(env); err != nil {
			return nil, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
		}
	default:
		var snap *sim.Snapshot
		if cache != nil {
			snap, _ = cache.warmup(name, p, scheme, cfg)
		}
		if snap != nil {
			// Fork from the (possibly shared) warmup checkpoint.
			m = sim.NewMachine(cfg, scheme)
			m.Restore(snap)
			sw = &sinkSwitch{inner: trace.Discard{}}
			env = workload.NewEnv(sw, runP)
			if err := w.Setup(env); err != nil {
				return nil, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
			}
			sw.inner = m
		} else {
			// Live path: no cache, or a setup that is not forkable.
			// The single measured pass still serves every horizon, but a
			// faulting setup must not persist checkpoints — a later
			// process would rebuild its Go state against Discard, which
			// diverges from a faulting setup.
			m = sim.NewMachine(cfg, scheme)
			env = workload.NewEnv(m, runP)
			if err := w.Setup(env); err != nil {
				return nil, fmt.Errorf("domainvirt: %s setup under %s: %w", name, scheme, err)
			}
			if r := m.Result(); r.Counters.DomainFaults > 0 || r.Counters.PageFaults > 0 {
				persistOK = false
			}
			m.ResetStats()
		}
	}

	env.AtOpEnd = func(i int) {
		op := i + 1
		if sw != nil && op == resumeOp {
			// Crossing the resume boundary: the Discard-replayed prefix
			// ends here and the restored machine takes over.
			sw.inner = m
			return
		}
		if op <= resumeOp {
			return
		}
		idx, isHorizon := byOp[op]
		if !isHorizon || have[idx] {
			return
		}
		r := m.Result()
		results[idx] = r
		have[idx] = true
		if persistOK && r.Counters.DomainFaults == 0 && r.Counters.PageFaults == 0 {
			if data, err := sim.EncodeSnapshot(m.Snapshot()); err == nil {
				// Best-effort, like the warmup write-through.
				_ = cache.PutEncoded(HorizonKeyFor(name, p, scheme, cfg, op), data)
			}
		}
	}
	if err := w.Run(env); err != nil {
		return nil, fmt.Errorf("domainvirt: %s run under %s: %w", name, scheme, err)
	}
	if r := m.Result(); r.Counters.DomainFaults > 0 || r.Counters.PageFaults > 0 {
		return nil, fmt.Errorf("domainvirt: %s under %s raised %d domain / %d page faults (first: %v)",
			name, scheme, r.Counters.DomainFaults, r.Counters.PageFaults, m.Faults())
	}
	return results, nil
}

// --- The "horizons" experiment: overhead convergence vs. run length.

// HorizonRow is one ops horizon's overhead over the lowerbound, per
// scheme — the same cells as a Fig. 6 point, swept along run length
// instead of PMO count. Short horizons are warmup-adjacent (caches and
// buffers still settling); the row sequence shows where the steady-state
// overheads the paper reports stop moving.
type HorizonRow struct {
	Ops        int
	LibmpkPct  float64
	MPKVirtPct float64
	DomVirtPct float64
}

// horizonSchemes are the schemes the horizons experiment sweeps.
var horizonSchemes = []Scheme{SchemeLowerbound, SchemeLibmpk, SchemeMPKVirt, SchemeDomainVirt}

// HorizonSweep evaluates benchmark name at every ops horizon via mid-run
// checkpoint forking: one warmup and one measured pass per scheme,
// regardless of how many horizons are requested. Rows are assembled in
// horizon order from per-scheme result slices, so the output is
// independent of scheduling and bit-identical to per-horizon full runs.
func HorizonSweep(opt ExpOptions, name string, p Params, horizons []int) ([]HorizonRow, error) {
	perScheme := make(map[Scheme][]Result, len(horizonSchemes))
	for _, s := range horizonSchemes {
		rs, err := RunHorizons(name, p, s, opt.Cfg, horizons, opt.Snapshots)
		if err != nil {
			return nil, err
		}
		perScheme[s] = rs
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "[horizons] %s x %s: %d horizons in one pass\n", name, s, len(horizons))
		}
	}
	rows := make([]HorizonRow, 0, len(horizons))
	for i, h := range horizons {
		lb := perScheme[SchemeLowerbound][i]
		rows = append(rows, HorizonRow{
			Ops:        h,
			LibmpkPct:  perScheme[SchemeLibmpk][i].OverheadPct(lb),
			MPKVirtPct: perScheme[SchemeMPKVirt][i].OverheadPct(lb),
			DomVirtPct: perScheme[SchemeDomainVirt][i].OverheadPct(lb),
		})
	}
	return rows, nil
}

// HorizonHorizonsFor returns the default horizon ladder for a measured
// budget of ops: powers of two from ops/16 up to ops.
func HorizonHorizonsFor(ops int) []int {
	var hs []int
	for h := ops / 16; h < ops; h *= 2 {
		if h > 0 {
			hs = append(hs, h)
		}
	}
	return append(hs, ops)
}

// HorizonReport renders a horizon sweep.
func HorizonReport(name string, rows []HorizonRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Horizon sweep (%s): overhead over lowerbound vs. measured ops (one pass per scheme)", name),
		Headers: []string{"Ops", "libmpk %", "MPK Virt %", "Domain Virt %"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.2f", r.LibmpkPct),
			fmt.Sprintf("%.2f", r.MPKVirtPct),
			fmt.Sprintf("%.2f", r.DomVirtPct))
	}
	return t
}
