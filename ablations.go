package domainvirt

import (
	"fmt"

	"domainvirt/internal/report"
)

// Ablations probe the design choices DESIGN.md calls out: node placement
// (how many domains one operation touches), DTTLB/PTLB sizing, and the
// number of cores participating in TLB shootdowns.

// AblationRow is one ablation configuration's overhead over the
// lowerbound, per scheme.
type AblationRow struct {
	Label      string
	LibmpkPct  float64
	MPKVirtPct float64
	DomVirtPct float64
}

// ablationRun evaluates one labeled configuration. Each row's four
// scheme cells run on the grid worker pool; rows that vary only cost
// parameters (AblationCosts) share warmup checkpoints through
// opt.Snapshots, since the snapshot key covers structural configuration
// only. Observability export is disabled for ablation rows — rows with
// different configs would collide on the same cell labels.
func ablationRun(opt ExpOptions, name string, p Params, cfg Config, label string) (AblationRow, error) {
	ro := opt
	ro.Cfg = cfg
	ro.Obs = ExpObs{}
	res, err := RunSchemesOpt(name, p, ro,
		SchemeLowerbound, SchemeLibmpk, SchemeMPKVirt, SchemeDomainVirt)
	if err != nil {
		return AblationRow{}, err
	}
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "[ablation] %s x %s\n", name, label)
	}
	lb := res[SchemeLowerbound]
	return AblationRow{
		Label:      label,
		LibmpkPct:  res[SchemeLibmpk].OverheadPct(lb),
		MPKVirtPct: res[SchemeMPKVirt].OverheadPct(lb),
		DomVirtPct: res[SchemeDomainVirt].OverheadPct(lb),
	}, nil
}

// AblationPlacement contrasts scattered placement (one structure spread
// across all pools; an operation's traversal crosses many domains) with
// per-pool placement (one structure per pool; an operation touches mostly
// one domain) on the AVL benchmark.
func AblationPlacement(opt ExpOptions) ([]AblationRow, error) {
	var rows []AblationRow
	for _, placement := range []string{"scatter", "perpool"} {
		for _, pmos := range []int{64, 1024} {
			p := opt.microParams(pmos)
			p.Placement = placement
			if placement == "perpool" {
				// InitialElems is per pool here; keep setup bounded.
				p.InitialElems = 128
			}
			row, err := ablationRun(opt, "avl", p, opt.Cfg, fmt.Sprintf("%s/%d PMOs", placement, pmos))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AblationBufferSizes sweeps the DTTLB and PTLB entry counts — the
// paper's 16-entry base case versus smaller and larger buffers — at 1024
// PMOs on AVL.
func AblationBufferSizes(opt ExpOptions) ([]AblationRow, error) {
	var rows []AblationRow
	for _, entries := range []int{8, 16, 32, 64} {
		cfg := opt.Cfg
		cfg.DTTLBEntries = entries
		cfg.PTLBEntries = entries
		p := opt.microParams(1024)
		row, err := ablationRun(opt, "avl", p, cfg, fmt.Sprintf("%d entries", entries))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationCores scales the core/thread count: the MPK-virtualization
// shootdown cost is "the sum of the overhead for a key remapping for
// number_of_thread threads", so its overhead grows with cores while
// domain virtualization stays flat.
func AblationCores(opt ExpOptions) ([]AblationRow, error) {
	var rows []AblationRow
	for _, cores := range []int{1, 2, 4} {
		cfg := opt.Cfg
		cfg.Cores = cores
		p := opt.microParams(256)
		p.Threads = cores
		row, err := ablationRun(opt, "avl", p, cfg, fmt.Sprintf("%d cores", cores))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationReport renders ablation rows.
func AblationReport(title string, rows []AblationRow) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"Configuration", "libmpk %", "MPK Virt %", "Domain Virt %"},
	}
	for _, r := range rows {
		t.AddRow(r.Label,
			fmt.Sprintf("%.2f", r.LibmpkPct),
			fmt.Sprintf("%.2f", r.MPKVirtPct),
			fmt.Sprintf("%.2f", r.DomVirtPct))
	}
	return t
}

// AblationCosts sweeps the key architectural cost parameters to show the
// conclusions are not knife-edge: halving/doubling the TLB-invalidation
// cost moves MPK virtualization proportionally, and NVM latency moves the
// baseline (so all relative overheads shrink as memory slows down).
func AblationCosts(opt ExpOptions) ([]AblationRow, error) {
	var rows []AblationRow
	for _, inval := range []uint64{143, 286, 572} {
		cfg := opt.Cfg
		cfg.Costs.TLBInval = inval
		p := opt.microParams(1024)
		row, err := ablationRun(opt, "avl", p, cfg, fmt.Sprintf("TLB inval %d cycles", inval))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, nvm := range []uint64{120, 360, 720} {
		cfg := opt.Cfg
		cfg.Mem.NVMLatency = nvm
		p := opt.microParams(1024)
		row, err := ablationRun(opt, "avl", p, cfg, fmt.Sprintf("NVM latency %d cycles", nvm))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
