// Package domainvirt is a library-scale reproduction of "Hardware-Based
// Domain Virtualization for Intra-Process Isolation of Persistent Memory
// Objects" (ISCA 2020). It bundles:
//
//   - a PMO library (pools, relocatable ObjectIDs, attach/detach,
//     namespace/permissions, durable transactions) — see OpenStore,
//     NewSpace, Begin;
//   - the paper's protection engines (default MPK, libmpk software
//     virtualization, hardware MPK virtualization, hardware domain
//     virtualization) behind one interface;
//   - a trace-driven timing simulator with the paper's Table II
//     parameters — see NewMachine;
//   - the WHISPER-like and multi-PMO benchmark suites plus experiment
//     runners regenerating every table and figure of the evaluation —
//     see Table5 through Fig7.
package domainvirt

import (
	"context"

	"domainvirt/internal/cluster"
	"domainvirt/internal/conformance"
	"domainvirt/internal/core"
	"domainvirt/internal/crashconform"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/pmo"
	"domainvirt/internal/serve"
	"domainvirt/internal/sim"
	"domainvirt/internal/stats"
	"domainvirt/internal/trace"
	"domainvirt/internal/txn"
	"domainvirt/internal/workload"

	// Register the benchmark suites.
	_ "domainvirt/internal/workload/micro"
	_ "domainvirt/internal/workload/server"
	_ "domainvirt/internal/workload/whisper"
)

// PMO library API (Table I of the paper).
type (
	// Store is the OS-side PMO namespace (names, IDs, permissions,
	// file persistence).
	Store = pmo.Store
	// Pool is one persistent memory object.
	Pool = pmo.Pool
	// PoolInfo summarizes a pool for listings.
	PoolInfo = pmo.PoolInfo
	// Mode is a pool permission mode.
	Mode = pmo.Mode
	// OID is a relocatable persistent pointer (32-bit pool ID +
	// 32-bit offset).
	OID = pmo.OID
	// Space is a process address space holding PMO attachments.
	Space = pmo.Space
	// Attachment binds an attached pool to its VA region and domain.
	Attachment = pmo.Attachment
	// Tx is a durable redo-log transaction on a pool.
	Tx = txn.Tx
	// MultiTx is a two-phase durable transaction spanning several pools.
	MultiTx = txn.MultiTx
)

// Pool modes and the null OID.
const (
	ModeOwnerRead  = pmo.ModeOwnerRead
	ModeOwnerWrite = pmo.ModeOwnerWrite
	ModeOtherRead  = pmo.ModeOtherRead
	ModeOtherWrite = pmo.ModeOtherWrite
	ModeDefault    = pmo.ModeDefault
	NullOID        = pmo.NullOID
)

// OpenStore opens (or creates) a file-backed PMO store.
func OpenStore(dir string) (*Store, error) { return pmo.OpenStore(dir) }

// NewStore creates an in-memory PMO store.
func NewStore() *Store { return pmo.NewStore() }

// NewSpace creates an address space; sink may be a *Machine (simulation)
// or nil (plain library use).
func NewSpace(sink trace.Sink) *Space { return pmo.NewSpace(sink) }

// MakeOID builds an OID from a pool ID and offset.
func MakeOID(pool, off uint32) OID { return pmo.MakeOID(pool, off) }

// Begin starts a durable transaction on pool.
func Begin(pool *Pool) (*Tx, error) { return txn.Begin(pool) }

// Recover completes or discards an interrupted transaction on pool.
func Recover(pool *Pool) (bool, error) { return txn.Recover(pool) }

// BeginMulti starts a cross-pool transaction coordinated by coord.
func BeginMulti(coord *Pool) (*MultiTx, error) { return txn.BeginMulti(coord) }

// RecoverStore runs cross-pool recovery over every pool in the store,
// returning the number of redone logs.
func RecoverStore(store *Store) (int, error) { return txn.RecoverStore(store) }

// Protection-domain API.
type (
	// DomainID identifies a protection domain (one per attached PMO).
	DomainID = core.DomainID
	// ThreadID identifies a thread of the protected process.
	ThreadID = core.ThreadID
	// Perm is a read/write domain permission.
	Perm = core.Perm
	// Engine is a pluggable protection scheme.
	Engine = core.Engine
	// Inspector is the ERIM-style SETPERM call-site gate.
	Inspector = core.Inspector
	// Costs holds the architectural latency parameters (Table II).
	Costs = core.Costs
)

// Permissions.
const (
	PermRW   = core.PermRW
	PermR    = core.PermR
	PermNone = core.PermNone
)

// NewInspector returns an empty SETPERM site inspector.
func NewInspector() *Inspector { return core.NewInspector() }

// Simulation API.
type (
	// Machine is the trace-driven timing simulator (implements
	// trace.Sink).
	Machine = sim.Machine
	// Config is the machine configuration (Table II defaults).
	Config = sim.Config
	// Scheme names a protection engine.
	Scheme = sim.Scheme
	// Result is one simulation outcome with cycle breakdowns.
	Result = stats.Result
	// Params parameterizes a workload run.
	Params = workload.Params
	// VA is a simulated virtual address.
	VA = memlayout.VA
)

// Schemes.
const (
	SchemeBaseline   = sim.SchemeBaseline
	SchemeLowerbound = sim.SchemeLowerbound
	SchemeMPK        = sim.SchemeMPK
	SchemeLibmpk     = sim.SchemeLibmpk
	SchemeMPKVirt    = sim.SchemeMPKVirt
	SchemeDomainVirt = sim.SchemeDomainVirt
)

// DefaultConfig returns the paper's Table II machine configuration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewMachine builds a simulator with the given scheme's engine.
func NewMachine(cfg Config, scheme Scheme) *Machine { return sim.NewMachine(cfg, scheme) }

// Workloads lists the registered benchmark names.
func Workloads() []string { return workload.Names() }

// Observability API: passive, deterministic instrumentation of a
// simulation run — epoch-sampled counter time series, latency
// histograms, and a run manifest — see RunObserved and ExpOptions.Obs.
type (
	// ObsOptions configures the observability recorder (epoch length
	// in retired instructions; 0 disables sampling).
	ObsOptions = obs.Options
	// Recorder accumulates samples, histograms, and the manifest for
	// one run.
	Recorder = obs.Recorder
	// Manifest identifies one observed run (scheme, workload, seed,
	// parameters, config hash, tool version).
	Manifest = obs.Manifest
	// ObsSample is one epoch-boundary snapshot of counter deltas.
	ObsSample = obs.Sample
	// Histogram is a mergeable log2-bucketed latency histogram.
	Histogram = obs.Histogram
)

// Conformance API: differential replay of generated trace programs
// through every protection engine, checking that verdicts, fault
// attribution, cycle accounting, and the lowerbound/libmpk overhead
// envelope agree across schemes.
type (
	// ConformOptions configures a conformance campaign.
	ConformOptions = conformance.Options
	// ConformReport aggregates a campaign's coverage and divergences.
	ConformReport = conformance.Report
)

// Conform runs a conformance campaign: generate Programs seeded trace
// programs, replay each under every applicable scheme, and on any
// invariant violation minimize the program and (when CorpusDir is set)
// persist a .prog repro. The error covers I/O problems only; invariant
// violations are reported via ConformReport.Diverged.
func Conform(opt ConformOptions) (*ConformReport, error) { return conformance.Run(opt) }

// Crash-consistency conformance API: kill-at-every-step recovery
// checking of the durable transaction layer under a fault-injecting
// persistence model (torn stores, reordered flushes, dropped tails).
type (
	// CrashConformOptions configures a crash-conformance sweep.
	CrashConformOptions = crashconform.Options
	// CrashConformReport aggregates a sweep's checks and violations.
	CrashConformReport = crashconform.Report
)

// CrashConform sweeps generated transaction workloads: each victim
// transaction is recorded at persistence-media granularity, then for
// every crash point and fault mode the reconstructed NVM image is
// recovered and checked for prefix consistency (all-pre or all-post,
// never a mix), idempotency, and clean logs. Failing workloads leave
// .crash repros in CorpusDir when set. The error covers setup/I-O
// problems only; contract violations are reported via Failed.
func CrashConform(opt CrashConformOptions) (*CrashConformReport, error) {
	return crashconform.Run(opt)
}

// Service API: the concurrent PMO daemon (cmd/pmod) and its closed-loop
// client and load generator (cmd/pmoload). The server shards its session
// table, runs each shard's traffic through its own protection-engine
// machine, and serves every request inside a least-privilege domain
// window on the session's own pool.
type (
	// Server is the concurrent PMO service daemon.
	Server = serve.Server
	// ServeOptions configures a Server (shards, workers, queue depth,
	// idle eviction, protection engine).
	ServeOptions = serve.Options
	// ServeClient is a closed-loop wire-protocol client.
	ServeClient = serve.Client
	// TxWrite is one write of a wire-protocol TX_COMMIT.
	TxWrite = serve.TxWrite
	// ServeRequest is one wire-protocol request; batches of them
	// pipeline through ServeClient.DoBatch on a v2 session.
	ServeRequest = serve.Request
	// ServeResponse is one wire-protocol response (DoBatch fills one
	// per request, matched by correlation ID).
	ServeResponse = serve.Response
	// LoadOptions configures a closed-loop load run against a daemon.
	LoadOptions = serve.LoadOptions
	// LoadReport is the outcome of one load run, including the
	// isolation-violation count and a latency Histogram.
	LoadReport = serve.LoadReport
)

// Wire opcodes and statuses needed to build batch requests and read
// their per-entry results.
const (
	OpRead     = serve.OpRead
	OpWrite    = serve.OpWrite
	OpTxCommit = serve.OpTxCommit
	StatusOK   = serve.StatusOK
)

// NewServer builds a PMO service daemon; call Serve with a listener.
func NewServer(opts ServeOptions) *Server { return serve.NewServer(opts) }

// DialServer connects a closed-loop client to a pmod daemon.
func DialServer(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// DialServerContext is DialServer under a dial context (deadline or
// cancellation).
func DialServerContext(ctx context.Context, addr string) (*ServeClient, error) {
	return serve.DialContext(ctx, addr)
}

// RunLoad drives a pmod daemon with concurrent closed-loop clients and
// aggregates throughput, typed-error counts, isolation checks, and
// latency histograms.
func RunLoad(opts LoadOptions) (*serve.LoadReport, error) { return serve.RunLoad(opts) }

// Cluster API: the session router (cmd/pmorouter) that fronts N pmod
// backends. Sessions land on the backend that owns their pool via
// rendezvous hashing; a down owner yields a typed UNAVAILABLE rather
// than a silent failover onto the wrong node's (empty) pool.
type (
	// Router is the cluster session router.
	Router = cluster.Router
	// RouterOptions configures a Router (backends, timeouts, health
	// probing, per-backend connection limits).
	RouterOptions = cluster.Options
)

// NewRouter builds a session router over the given backends; call
// Serve with a listener.
func NewRouter(opts RouterOptions) (*Router, error) { return cluster.NewRouter(opts) }

// PickNode returns the cluster node that owns key under the router's
// rendezvous-hash placement (empty string for an empty node list).
func PickNode(key string, nodes []string) string { return cluster.Pick(key, nodes) }
