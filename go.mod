module domainvirt

go 1.23
