package domainvirt_test

import (
	"bytes"
	"testing"

	"domainvirt"
	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

func smallParams(pmos int) domainvirt.Params {
	return domainvirt.Params{NumPMOs: pmos, Ops: 800, InitialElems: 256, Seed: 42}
}

// TestOverheadOrderingManyPMOs is the paper's headline result in miniature:
// with many PMOs, libmpk >> hardware MPK virtualization >> hardware domain
// virtualization, all above the lowerbound.
func TestOverheadOrderingManyPMOs(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	res, err := domainvirt.RunSchemes("avl", smallParams(256), cfg,
		domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound,
		domainvirt.SchemeLibmpk, domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt)
	if err != nil {
		t.Fatal(err)
	}
	base := res[domainvirt.SchemeBaseline]
	lb := res[domainvirt.SchemeLowerbound].OverheadPct(base)
	lib := res[domainvirt.SchemeLibmpk].OverheadPct(base)
	mv := res[domainvirt.SchemeMPKVirt].OverheadPct(base)
	dv := res[domainvirt.SchemeDomainVirt].OverheadPct(base)
	t.Logf("overheads: lb=%.2f%% libmpk=%.2f%% mpkvirt=%.2f%% domainvirt=%.2f%%", lb, lib, mv, dv)
	if !(lb < dv && dv < mv && mv < lib) {
		t.Errorf("ordering violated: lb=%.2f dv=%.2f mv=%.2f libmpk=%.2f", lb, dv, mv, lib)
	}
	if lib < 5*mv {
		t.Errorf("libmpk should be several times worse than MPK virtualization (%.2f vs %.2f)", lib, mv)
	}
}

// TestCrossoverFewPMOs: with 16 PMOs all domains hold keys, so MPK
// virtualization matches the lowerbound while domain virtualization pays
// its PTLB access latency — the crossover the paper describes.
func TestCrossoverFewPMOs(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	res, err := domainvirt.RunSchemes("avl", smallParams(16), cfg,
		domainvirt.SchemeLowerbound, domainvirt.SchemeLibmpk,
		domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt)
	if err != nil {
		t.Fatal(err)
	}
	lb := res[domainvirt.SchemeLowerbound].Cycles
	mv := res[domainvirt.SchemeMPKVirt].Cycles
	dv := res[domainvirt.SchemeDomainVirt].Cycles
	if mv != lb {
		t.Errorf("16 PMOs: mpkvirt %d != lowerbound %d (no evictions expected)", mv, lb)
	}
	if dv <= mv {
		t.Errorf("16 PMOs: domainvirt (%d) should exceed mpkvirt (%d)", dv, mv)
	}
	if ev := res[domainvirt.SchemeMPKVirt].Counters.Evictions; ev != 0 {
		t.Errorf("evictions = %d with 16 PMOs", ev)
	}
}

// TestSinglePMOWhisper mirrors Table V: default MPK and hardware MPK
// virtualization are cycle-identical with one PMO; domain virtualization
// is slightly slower; all overheads are small.
func TestSinglePMOWhisper(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	p := domainvirt.Params{NumPMOs: 1, Ops: 1200, InitialElems: 300, PoolSize: 128 << 20, Seed: 7}
	res, err := domainvirt.RunSchemes("ycsb", p, cfg,
		domainvirt.SchemeBaseline, domainvirt.SchemeMPK,
		domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt)
	if err != nil {
		t.Fatal(err)
	}
	base := res[domainvirt.SchemeBaseline]
	mpk := res[domainvirt.SchemeMPK]
	mv := res[domainvirt.SchemeMPKVirt]
	dv := res[domainvirt.SchemeDomainVirt]
	if mpk.Cycles != mv.Cycles {
		t.Errorf("single PMO: MPK (%d) != MPK virtualization (%d); Table V says identical", mpk.Cycles, mv.Cycles)
	}
	if dv.Cycles <= mpk.Cycles {
		t.Errorf("domain virtualization (%d) should be slightly above MPK (%d)", dv.Cycles, mpk.Cycles)
	}
	if ov := mpk.OverheadPct(base); ov <= 0 || ov > 10 {
		t.Errorf("MPK overhead %.2f%% out of the small single-PMO range", ov)
	}
}

// TestAllWorkloadsAllSchemes runs every registered workload under every
// applicable scheme; Run fails on any protection fault, so this checks
// that legitimate operation never trips the isolation machinery.
func TestAllWorkloadsAllSchemes(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	for _, name := range domainvirt.Workloads() {
		p := domainvirt.Params{NumPMOs: 24, Ops: 150, InitialElems: 64, Seed: 11}
		for _, wl := range domainvirt.WhisperBenchmarks {
			if wl == name {
				p.NumPMOs = 1
				p.PoolSize = 64 << 20
			}
		}
		schemes := []domainvirt.Scheme{
			domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound,
			domainvirt.SchemeLibmpk, domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt,
		}
		if p.NumPMOs <= 16 {
			schemes = append(schemes, domainvirt.SchemeMPK)
		}
		for _, s := range schemes {
			if _, err := domainvirt.Run(name, p, s, cfg); err != nil {
				t.Errorf("%s under %s: %v", name, s, err)
			}
		}
	}
}

// TestTraceRecordReplayEquivalence: recording a workload to a binary trace
// and replaying it into a fresh machine must reproduce the direct run's
// cycle count exactly — the Pin-then-Sniper methodology.
func TestTraceRecordReplayEquivalence(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	p := domainvirt.Params{NumPMOs: 32, Ops: 300, InitialElems: 64, Seed: 13}

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct := domainvirt.NewMachine(cfg, domainvirt.SchemeDomainVirt)
	env := workload.NewEnv(trace.NewTee(direct, w), p)
	wl, err := workload.New("rbt")
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := wl.Run(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := direct.Result()

	replayed := domainvirt.NewMachine(cfg, domainvirt.SchemeDomainVirt)
	if _, err := trace.Replay(&buf, replayed); err != nil {
		t.Fatal(err)
	}
	got := replayed.Result()
	if got.Cycles != want.Cycles {
		t.Errorf("replay = %d cycles, direct = %d", got.Cycles, want.Cycles)
	}
	if got.Counters.Loads != want.Counters.Loads || got.Counters.Stores != want.Counters.Stores {
		t.Errorf("replay access counts diverge")
	}
}

// TestExperimentHarness smoke-tests every table/figure generator at tiny
// scale and re-checks the headline shapes.
func TestExperimentHarness(t *testing.T) {
	opt := domainvirt.DefaultExpOptions()
	opt.WhisperOps = 400
	opt.WhisperInit = 100
	opt.MicroOps = 300
	opt.MicroInit = 128
	opt.PMOCounts = []int{16, 1024}

	t5, err := domainvirt.Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 6 {
		t.Fatalf("Table5 rows = %d", len(t5))
	}
	for _, r := range t5 {
		if r.MPKPct != r.MPKVirtPct {
			t.Errorf("%s: MPK %.2f != MPKVirt %.2f", r.Benchmark, r.MPKPct, r.MPKVirtPct)
		}
		if r.DomainVirtPct < r.MPKPct {
			t.Errorf("%s: domain virtualization below MPK", r.Benchmark)
		}
		if r.SwitchesPerSec <= 0 {
			t.Errorf("%s: no switch rate", r.Benchmark)
		}
	}
	var b bytes.Buffer
	if err := domainvirt.Table5Report(t5).Render(&b); err != nil || b.Len() == 0 {
		t.Error("Table5 render failed")
	}

	t6, err := domainvirt.Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6) != 5 {
		t.Fatalf("Table6 rows = %d", len(t6))
	}

	f6, err := domainvirt.Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range f6 {
		last := len(fr.X) - 1
		if fr.Libmpk[last] < fr.MPKVirt[last] || fr.MPKVirt[last] < fr.DomainVirt[last] {
			t.Errorf("%s at 1024 PMOs: ordering violated (%.1f, %.1f, %.1f)",
				fr.Benchmark, fr.Libmpk[last], fr.MPKVirt[last], fr.DomainVirt[last])
		}
	}
	f7, err := domainvirt.Fig7(f6)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := f7.SpeedupAt[1024]
	if !ok {
		t.Fatal("no 1024-PMO speedup")
	}
	if sp[0] < 2 || sp[1] < sp[0] {
		t.Errorf("speedups at 1024 PMOs = %.1fx / %.1fx; want domain virt > MPK virt > 2x", sp[0], sp[1])
	}
	t.Logf("speedups over libmpk at 1024 PMOs: mpkvirt %.1fx, domainvirt %.1fx", sp[0], sp[1])

	mv, dv, err := domainvirt.Table7(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mv {
		if mv[i].TLBInvPct <= mv[i].DTTMissPct {
			t.Errorf("%s: TLB invalidations (%.2f%%) should dominate DTT misses (%.2f%%)",
				mv[i].Benchmark, mv[i].TLBInvPct, mv[i].DTTMissPct)
		}
		if dv[i].TotalPct >= mv[i].TotalPct {
			t.Errorf("%s: domain virt total (%.2f%%) should be far below MPK virt (%.2f%%)",
				dv[i].Benchmark, dv[i].TotalPct, mv[i].TotalPct)
		}
	}
	b.Reset()
	if err := domainvirt.Table7Report(mv, dv).Render(&b); err != nil {
		t.Error(err)
	}

	b.Reset()
	if err := domainvirt.Table8Report(opt.Cfg).Render(&b); err != nil || b.Len() == 0 {
		t.Error("Table8 render failed")
	}
}

func TestWorkloadsListed(t *testing.T) {
	names := domainvirt.Workloads()
	if len(names) != 12 {
		t.Errorf("registered workloads = %v", names)
	}
}
