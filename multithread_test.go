package domainvirt_test

import (
	"testing"

	"domainvirt"
)

// TestServerWorkloadMulticore runs the server scenario on 1, 2, and 4
// cores and checks the paper's scaling claim quantitatively: the
// MPK-virtualization shootdown broadcast makes its overhead grow with
// the core count, while domain virtualization (no shootdowns) stays
// essentially flat.
func TestServerWorkloadMulticore(t *testing.T) {
	overheads := func(cores int) (mv, dv float64) {
		cfg := domainvirt.DefaultConfig()
		cfg.Cores = cores
		p := domainvirt.Params{NumPMOs: 128, Ops: 1200, Threads: cores, Seed: 21}
		res, err := domainvirt.RunSchemes("server", p, cfg,
			domainvirt.SchemeLowerbound, domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt)
		if err != nil {
			t.Fatal(err)
		}
		lb := res[domainvirt.SchemeLowerbound]
		return res[domainvirt.SchemeMPKVirt].OverheadPct(lb), res[domainvirt.SchemeDomainVirt].OverheadPct(lb)
	}
	mv1, dv1 := overheads(1)
	mv4, dv4 := overheads(4)
	t.Logf("1 core: mpkvirt %.1f%% domainvirt %.1f%%; 4 cores: mpkvirt %.1f%% domainvirt %.1f%%", mv1, dv1, mv4, dv4)
	if mv4 < mv1*1.5 {
		t.Errorf("mpkvirt overhead did not scale with cores: %.1f%% -> %.1f%%", mv1, mv4)
	}
	if dv4 > dv1*1.5+2 {
		t.Errorf("domainvirt overhead scaled with cores but must not: %.1f%% -> %.1f%%", dv1, dv4)
	}
	if dv4 >= mv4 {
		t.Errorf("on 4 cores domain virtualization (%.1f%%) must beat MPK virtualization (%.1f%%)", dv4, mv4)
	}
}

// TestMultithreadedIsolation: threads on different cores never see each
// other's windows, even while running concurrently interleaved.
func TestMultithreadedIsolation(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	cfg.Cores = 4
	p := domainvirt.Params{NumPMOs: 64, Ops: 800, Threads: 4, Seed: 33}
	for _, s := range []domainvirt.Scheme{domainvirt.SchemeLibmpk, domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt} {
		if _, err := domainvirt.Run("server", p, s, cfg); err != nil {
			t.Errorf("server under %s: %v", s, err)
		}
	}
}
