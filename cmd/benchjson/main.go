// Command benchjson turns `go test -bench -benchmem` output into a
// machine-readable JSON document and gates regressions against a
// checked-in baseline.
//
// Generate (reads bench output on stdin, preserves the existing file's
// note and reference sections):
//
//	go test -bench . -benchmem ./internal/sim/ | benchjson -out BENCH_sim.json
//
// Check (reads bench output on stdin, compares against the baseline;
// exits nonzero on any alloc increase or a >tolerance ns/op slowdown):
//
//	go test -bench . -benchmem ./internal/sim/ | benchjson -check BENCH_sim.json
//
// Render (reads the baseline file only, no stdin; writes a deterministic
// markdown results page):
//
//	benchjson -render BENCH_sim.json -md RESULTS.md
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's measured steady-state cost. When the input
// carries several runs of the same benchmark (-count), ns/op keeps the
// minimum (least scheduler noise) and the alloc columns keep the
// maximum (an alloc that appears in any run is real).
type entry struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type doc struct {
	Schema int `json:"schema"`
	// Note is free-form provenance (what machine, what methodology);
	// regeneration preserves it.
	Note string `json:"note,omitempty"`
	// Reference records measurements outside the regenerated set, e.g.
	// the pre-optimization medians a speedup claim was made against;
	// regeneration preserves it.
	Reference  map[string]float64 `json:"reference,omitempty"`
	Benchmarks map[string]entry   `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write parsed benchmarks as JSON to this file (preserving its note/reference)")
	check := flag.String("check", "", "compare parsed benchmarks against this baseline JSON")
	render := flag.String("render", "", "render this baseline JSON as a markdown results page (no stdin)")
	md := flag.String("md", "", "markdown output path for -render (default stdout)")
	tol := flag.Float64("ns-tolerance", 0.10, "allowed fractional ns/op regression in -check mode (negative disables the ns check)")
	note := flag.String("note", "", "set the note field when writing -out")
	flag.Parse()
	set := 0
	for _, f := range []string{*out, *check, *render} {
		if f != "" {
			set++
		}
	}
	if set != 1 {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -out, -check, or -render is required")
		os.Exit(2)
	}

	if *render != "" {
		d, err := load(*render)
		if err != nil {
			fatal(err)
		}
		buf := renderMarkdown(d, filepath.Base(*render))
		if *md == "" {
			os.Stdout.Write(buf)
			return
		}
		if err := os.WriteFile(*md, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: rendered %d benchmarks to %s\n", len(d.Benchmarks), *md)
		return
	}

	got, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *out != "" {
		d := doc{Schema: 1, Benchmarks: got}
		if prev, err := load(*out); err == nil {
			d.Note, d.Reference = prev.Note, prev.Reference
		}
		if *note != "" {
			d.Note = *note
		}
		buf, err := json.MarshalIndent(&d, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(got), *out)
		return
	}

	base, err := load(*check)
	if err != nil {
		fatal(err)
	}
	if errs := compare(base.Benchmarks, got, *tol); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks within budget of %s\n", len(base.Benchmarks), *check)
}

// renderMarkdown turns a baseline document into a deterministic results
// page: benchmarks grouped by their top-level name, one table per group,
// plus the note and reference sections. Byte-stable for a given input so
// the generated file can be committed and diffed.
func renderMarkdown(d *doc, source string) []byte {
	groups := map[string][]string{}
	for name := range d.Benchmarks {
		g := name
		if i := strings.IndexByte(name, '/'); i > 0 {
			g = name[:i]
		}
		groups[g] = append(groups[g], name)
	}
	var gnames []string
	for g := range groups {
		gnames = append(gnames, g)
	}
	sort.Strings(gnames)

	var b strings.Builder
	b.WriteString("# Benchmark results\n\n")
	fmt.Fprintf(&b, "Generated from `%s` by `benchjson -render` — do not edit by hand;\n", source)
	b.WriteString("regenerate with `scripts/bench.sh render` (or `update` to re-measure first).\n")
	if d.Note != "" {
		fmt.Fprintf(&b, "\n> %s\n", d.Note)
	}
	for _, g := range gnames {
		names := groups[g]
		sort.Strings(names)
		fmt.Fprintf(&b, "\n## %s\n\n", g)
		b.WriteString("| benchmark | ns/op | B/op | allocs/op |\n")
		b.WriteString("|---|---:|---:|---:|\n")
		for _, name := range names {
			e := d.Benchmarks[name]
			fmt.Fprintf(&b, "| `%s` | %s | %d | %d |\n",
				name, strconv.FormatFloat(e.NsOp, 'f', -1, 64), e.BytesOp, e.AllocsOp)
		}
	}
	if len(d.Reference) > 0 {
		b.WriteString("\n## Reference measurements\n\n")
		b.WriteString("| name | value |\n")
		b.WriteString("|---|---:|\n")
		var refs []string
		for k := range d.Reference {
			refs = append(refs, k)
		}
		sort.Strings(refs)
		for _, k := range refs {
			fmt.Fprintf(&b, "| `%s` | %s |\n", k, strconv.FormatFloat(d.Reference[k], 'f', -1, 64))
		}
	}
	return []byte(b.String())
}

// compare gates cand against base: every baseline benchmark must be
// present, must not allocate more, and (when tol >= 0) must not be more
// than tol slower per op.
func compare(base, cand map[string]entry, tol float64) []string {
	var errs []string
	for name, b := range base {
		c, ok := cand[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: missing from candidate run", name))
			continue
		}
		if c.AllocsOp > b.AllocsOp {
			errs = append(errs, fmt.Sprintf("%s: allocs/op %d > baseline %d", name, c.AllocsOp, b.AllocsOp))
		}
		if tol >= 0 && c.NsOp > b.NsOp*(1+tol) {
			errs = append(errs, fmt.Sprintf("%s: %.2f ns/op exceeds baseline %.2f by more than %.0f%%",
				name, c.NsOp, b.NsOp, tol*100))
		}
	}
	return errs
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Names are stored without the Benchmark prefix and without the
// trailing -GOMAXPROCS suffix.
func parseBench(r io.Reader) (map[string]entry, error) {
	out := make(map[string]entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := entry{NsOp: -1, BytesOp: -1, AllocsOp: -1}
		// f[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				e.NsOp = v
			case "B/op":
				e.BytesOp = int64(v)
			case "allocs/op":
				e.AllocsOp = int64(v)
			}
		}
		if e.NsOp < 0 {
			continue
		}
		if prev, ok := out[name]; ok {
			if prev.NsOp < e.NsOp {
				e.NsOp = prev.NsOp
			}
			if prev.BytesOp > e.BytesOp {
				e.BytesOp = prev.BytesOp
			}
			if prev.AllocsOp > e.AllocsOp {
				e.AllocsOp = prev.AllocsOp
			}
		}
		out[name] = e
	}
	return out, sc.Err()
}

func load(path string) (*doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
