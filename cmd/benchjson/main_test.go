package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: domainvirt/internal/sim
BenchmarkReplayTrace/domainvirt-8   	  500000	        74.03 ns/op	       0 B/op	       0 allocs/op
BenchmarkReplayTrace/domainvirt-8   	  500000	        80.11 ns/op	       1 B/op	       0 allocs/op
BenchmarkFetch-8                    	 1000000	        31.50 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	rt := got["ReplayTrace/domainvirt"]
	if rt.NsOp != 74.03 {
		t.Errorf("ns/op = %v, want the min 74.03 across counts", rt.NsOp)
	}
	if rt.BytesOp != 1 {
		t.Errorf("B/op = %v, want the max 1 across counts", rt.BytesOp)
	}
	if got["Fetch"].NsOp != 31.50 {
		t.Errorf("Fetch ns/op = %v", got["Fetch"].NsOp)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]entry{
		"A": {NsOp: 100, AllocsOp: 0},
		"B": {NsOp: 50, AllocsOp: 2},
		"C": {NsOp: 10, AllocsOp: 0},
	}
	cand := map[string]entry{
		"A": {NsOp: 109, AllocsOp: 0}, // within 10%
		"B": {NsOp: 40, AllocsOp: 3},  // faster but allocates more
		// C missing
	}
	errs := compare(base, cand, 0.10)
	if len(errs) != 2 {
		t.Fatalf("got %d failures %v, want 2 (alloc increase, missing)", len(errs), errs)
	}
	// Disabling the ns check must not change alloc strictness.
	cand["A"] = entry{NsOp: 500, AllocsOp: 0}
	cand["C"] = entry{NsOp: 10, AllocsOp: 0}
	if errs := compare(base, cand, -1); len(errs) != 1 {
		t.Fatalf("with ns check off got %v, want only the alloc failure", errs)
	}
}
