// Command pmotrace records workload instrumentation streams to binary
// trace files and replays them through the simulator — the Pin side of
// the paper's Pin-then-Sniper methodology. A recorded trace replays
// bit-identically under any protection scheme, making cross-scheme
// comparisons paired experiments.
//
// Usage:
//
//	pmotrace record -workload avl -pmos 256 -ops 5000 -o avl.trace
//	pmotrace stat   -i avl.trace
//	pmotrace audit  -i avl.trace
//	pmotrace replay -i avl.trace -scheme domainvirt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/stats"
	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "version" || cmd == "-version" || cmd == "--version" {
		fmt.Println(buildinfo.Stamp("pmotrace"))
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		wl      = fs.String("workload", "avl", "workload to record ("+strings.Join(domainvirt.Workloads(), ", ")+")")
		pmos    = fs.Int("pmos", 64, "number of PMOs")
		ops     = fs.Int("ops", 5000, "measured operations")
		initial = fs.Int("init", 1024, "initial elements")
		seed    = fs.Int64("seed", 42, "workload seed")
		out     = fs.String("o", "", "output trace file (record)")
		in      = fs.String("i", "", "input trace file (stat, audit, replay)")
		scheme  = fs.String("scheme", "domainvirt", "protection scheme (replay)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	switch cmd {
	case "record":
		if *out == "" {
			fatal(fmt.Errorf("-o is required"))
		}
		if err := record(*wl, *out, domainvirt.Params{
			NumPMOs: *pmos, Ops: *ops, InitialElems: *initial, Seed: *seed,
		}); err != nil {
			fatal(err)
		}

	case "stat":
		needIn(*in)
		var c trace.Counter
		n := replayInto(*in, &c)
		fmt.Printf("%s: %d events\n", *in, n)
		fmt.Printf("  instructions: %d\n", c.Instrs)
		fmt.Printf("  loads/stores: %d / %d\n", c.Loads, c.Stores)
		fmt.Printf("  SETPERMs:     %d\n", c.SetPerms)
		fmt.Printf("  attach/detach: %d / %d\n", c.Attaches, c.Detaches)
		fmt.Printf("  fences:       %d\n", c.Fences)

	case "audit":
		needIn(*in)
		a := trace.NewAuditor(nil)
		replayInto(*in, a)
		findings := a.Finish()
		fmt.Printf("%s: %d permission switches, peak %d write-enabled domain(s) per thread\n",
			*in, a.Switches, a.MaxWritable)
		if len(findings) == 0 {
			fmt.Println("audit: least-privilege window discipline holds")
			return
		}
		for _, f := range findings {
			fmt.Println("audit:", f)
		}
		os.Exit(1)

	case "replay":
		needIn(*in)
		cfg := domainvirt.DefaultConfig()
		m := domainvirt.NewMachine(cfg, domainvirt.Scheme(*scheme))
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		n, err := trace.Replay(f, m)
		if err != nil {
			fatal(err)
		}
		res := m.Result()
		fmt.Printf("replayed %d events under %s: %d cycles\n", n, *scheme, res.Cycles)
		fmt.Printf("  switches/sec: %.0f\n", res.SwitchesPerSec(cfg.ClockHz))
		fmt.Printf("  domain/page faults: %d / %d\n", res.Counters.DomainFaults, res.Counters.PageFaults)
		if ov := res.Breakdown.OverheadCycles(); ov > 0 {
			fmt.Printf("  protection overhead: %d cycles\n", ov)
			for i := 1; i < stats.NumCategories; i++ {
				if v := res.Breakdown.Cycles[stats.Category(i)]; v > 0 {
					fmt.Printf("    %-20s %d\n", stats.Category(i).String()+":", v)
				}
			}
		}

	default:
		usage()
	}
}

// record runs the workload against a trace writer only (no simulation):
// pure instrumentation, exactly the Pin role.
func record(name, path string, p domainvirt.Params) error {
	w, err := workload.New(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	env := workload.NewEnv(tw, p)
	if err := w.Setup(env); err != nil {
		return err
	}
	if err := w.Run(env); err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %s (%d ops, %d PMOs) to %s", name, p.Ops, p.NumPMOs, path)
	if info != nil {
		fmt.Printf(" (%d bytes)", info.Size())
	}
	fmt.Println()
	return nil
}

func replayInto(path string, sink trace.Sink) uint64 {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := trace.Replay(f, sink)
	if err != nil {
		fatal(err)
	}
	return n
}

func needIn(in string) {
	if in == "" {
		fatal(fmt.Errorf("-i is required"))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmotrace {record|stat|audit|replay} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmotrace:", err)
	os.Exit(1)
}
