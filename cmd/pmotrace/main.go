// Command pmotrace records workload instrumentation streams to binary
// trace files and replays them through the simulator — the Pin side of
// the paper's Pin-then-Sniper methodology. A recorded trace replays
// bit-identically under any protection scheme, making cross-scheme
// comparisons paired experiments.
//
// Usage:
//
//	pmotrace record -workload avl -pmos 256 -ops 5000 -o avl.trace
//	pmotrace stat   -i avl.trace
//	pmotrace audit  -i avl.trace
//	pmotrace replay -i avl.trace -scheme domainvirt
//	pmotrace replay -i /tmp/capture -scheme all -obs-out obs/
//
// The replay input may also be a directory of per-shard capture
// segments recorded by a live pmod daemon (`pmod -trace-out`): every
// *.pmotrc file replays independently (each segment is self-contained)
// and the per-scheme results aggregate across segments. With -scheme
// all the same captured traffic runs through every protection engine —
// a paired experiment on production traffic — and -obs-out exports a
// manifest, series files, and latency histograms per scheme.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/obs"
	"domainvirt/internal/sim"
	"domainvirt/internal/stats"
	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "version" || cmd == "-version" || cmd == "--version" {
		fmt.Println(buildinfo.Stamp("pmotrace"))
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		wl      = fs.String("workload", "avl", "workload to record ("+strings.Join(domainvirt.Workloads(), ", ")+")")
		pmos    = fs.Int("pmos", 64, "number of PMOs")
		ops     = fs.Int("ops", 5000, "measured operations")
		initial = fs.Int("init", 1024, "initial elements")
		seed    = fs.Int64("seed", 42, "workload seed")
		out      = fs.String("o", "", "output trace file (record)")
		in       = fs.String("i", "", "input trace file or capture directory (stat, audit, replay)")
		scheme   = fs.String("scheme", "domainvirt", "protection scheme, or \"all\" for every engine (replay)")
		workers  = fs.Int("workers", 1, "partitioned parallel replay workers (replay; 1 = sequential, 0 = GOMAXPROCS)")
		obsOut   = fs.String("obs-out", "", "export per-scheme manifests/series/histograms into this directory (replay)")
		obsEpoch = fs.Uint64("obs-epoch", 0, "obs sampling epoch in retired instructions (0 = totals only)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	switch cmd {
	case "record":
		if *out == "" {
			fatal(fmt.Errorf("-o is required"))
		}
		if err := record(*wl, *out, domainvirt.Params{
			NumPMOs: *pmos, Ops: *ops, InitialElems: *initial, Seed: *seed,
		}); err != nil {
			fatal(err)
		}

	case "stat":
		files := inputs(*in)
		var c trace.Counter
		var n uint64
		for _, p := range files {
			n += replayInto(p, &c)
		}
		fmt.Printf("%s: %d events in %d file(s)\n", *in, n, len(files))
		fmt.Printf("  instructions: %d\n", c.Instrs)
		fmt.Printf("  loads/stores: %d / %d\n", c.Loads, c.Stores)
		fmt.Printf("  SETPERMs:     %d\n", c.SetPerms)
		fmt.Printf("  attach/detach: %d / %d\n", c.Attaches, c.Detaches)
		fmt.Printf("  fences:       %d\n", c.Fences)

	case "audit":
		// Each capture segment is self-contained (the attach table and
		// open windows are re-emitted on rotation), so segments audit
		// independently.
		bad := false
		for _, p := range inputs(*in) {
			a := trace.NewAuditor(nil)
			replayInto(p, a)
			findings := a.Finish()
			fmt.Printf("%s: %d permission switches, peak %d write-enabled domain(s) per thread\n",
				p, a.Switches, a.MaxWritable)
			for _, f := range findings {
				fmt.Println("audit:", f)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
		fmt.Println("audit: least-privilege window discipline holds")

	case "replay":
		files := inputs(*in)
		schemes := []string{*scheme}
		if *scheme == "all" {
			schemes = schemes[:0]
			for _, s := range sim.AllSchemes {
				schemes = append(schemes, string(s))
			}
		}
		cfg := domainvirt.DefaultConfig()
		var baseline uint64
		for _, sc := range schemes {
			if len(schemes) > 1 {
				fmt.Printf("--- scheme %s ---\n", sc)
			}
			res, n := replayScheme(files, sc, cfg, *in, *obsOut, *obsEpoch, *workers)
			fmt.Printf("replayed %d events under %s: %d cycles\n", n, sc, res.Cycles)
			fmt.Printf("  switches/sec: %.0f\n", res.SwitchesPerSec(cfg.ClockHz))
			fmt.Printf("  domain/page faults: %d / %d\n", res.Counters.DomainFaults, res.Counters.PageFaults)
			if sc == string(sim.SchemeBaseline) {
				baseline = res.Cycles
			} else if baseline > 0 {
				fmt.Printf("  overhead vs baseline: %.2f%%\n",
					100*(float64(res.Cycles)-float64(baseline))/float64(baseline))
			}
			if ov := res.Breakdown.OverheadCycles(); ov > 0 {
				fmt.Printf("  protection overhead: %d cycles\n", ov)
				for i := 1; i < stats.NumCategories; i++ {
					if v := res.Breakdown.Cycles[stats.Category(i)]; v > 0 {
						fmt.Printf("    %-20s %d\n", stats.Category(i).String()+":", v)
					}
				}
			}
		}

	default:
		usage()
	}
}

// record runs the workload against a trace writer only (no simulation):
// pure instrumentation, exactly the Pin role.
func record(name, path string, p domainvirt.Params) error {
	w, err := workload.New(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	env := workload.NewEnv(tw, p)
	if err := w.Setup(env); err != nil {
		return err
	}
	if err := w.Run(env); err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %s (%d ops, %d PMOs) to %s", name, p.Ops, p.NumPMOs, path)
	if info != nil {
		fmt.Printf(" (%d bytes)", info.Size())
	}
	fmt.Println()
	return nil
}

// replayScheme runs every input file through a fresh machine under one
// scheme and aggregates the results. With obsOut set, one recorder
// accumulates latency histograms across all segments and the export set
// (manifest, series, histograms) lands in that directory.
//
// With workers != 1 each segment replays through a partitioned parallel
// plan (sim.ReplayPlan): the trace splits at safe boundaries, partitions
// run concurrently from prefix checkpoints, and every partition's end
// state is verified against the next checkpoint — the parallel run is
// its own conformance check and the results are bit-identical to the
// sequential path. Observed export keeps one recorder across segments,
// which is inherently sequential, so multi-segment observed inputs fall
// back to workers=1.
func replayScheme(files []string, scheme string, cfg domainvirt.Config, in, obsOut string, epoch uint64, workers int) (stats.Result, uint64) {
	if workers != 1 && obsOut != "" && len(files) > 1 {
		fmt.Println("  multi-segment observed replay shares one recorder; running sequentially")
		workers = 1
	}
	if workers != 1 {
		return replaySchemePartitioned(files, scheme, cfg, in, obsOut, epoch, workers)
	}
	var rec *obs.Recorder
	if obsOut != "" {
		rec = obs.NewRecorder(obs.Options{Epoch: epoch})
	}
	agg := stats.Result{Scheme: scheme}
	var events uint64
	var cores int
	for i, path := range files {
		m := domainvirt.NewMachine(cfg, domainvirt.Scheme(scheme))
		if rec != nil {
			m.SetRecorder(rec)
		}
		events += replayInto(path, m)
		if rec != nil && i == len(files)-1 {
			m.FlushObs()
		}
		res := m.Result()
		agg.Cycles += res.Cycles
		agg.WorkSum += res.WorkSum
		agg.Breakdown.Merge(&res.Breakdown)
		agg.Counters.Merge(&res.Counters)
		cores = m.NumCores()
	}
	if rec != nil {
		name := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
		rec.SetManifest(obs.Manifest{
			Scheme:      scheme,
			Workload:    "trace:" + name,
			Ops:         int(events),
			Cores:       cores,
			Epoch:       rec.EpochLen(),
			ConfigHash:  obs.ConfigHash(cfg),
			ToolVersion: obs.ToolVersion,
		})
		paths, err := rec.ExportDir(obsOut, name+"-"+scheme)
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			fmt.Printf("  wrote %s\n", p)
		}
	}
	return agg, events
}

// replaySchemePartitioned is the workers != 1 replay path: per segment,
// a planning pass records the sequential reference and checkpoints every
// partition boundary, then the partitions re-run concurrently and each
// one must land exactly on the next checkpoint. Segment results
// aggregate in file order, as in the sequential path.
func replaySchemePartitioned(files []string, scheme string, cfg domainvirt.Config, in, obsOut string, epoch uint64, workers int) (stats.Result, uint64) {
	agg := stats.Result{Scheme: scheme}
	var events uint64
	var rec *obs.Recorder
	var parts int
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		planEpoch := uint64(0)
		if obsOut != "" {
			planEpoch = epoch
		}
		plan, err := sim.NewReplayPlan(data, cfg, domainvirt.Scheme(scheme), sim.ReplayPlanOptions{
			MaxPartitions: workers,
			Epoch:         planEpoch,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		var res stats.Result
		if obsOut != "" {
			res, rec, err = plan.ReplayObserved(workers, obs.Options{Epoch: epoch})
		} else {
			res, _, err = plan.Replay(workers)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		events += plan.Events()
		parts += plan.Partitions()
		agg.Cycles += res.Cycles
		agg.WorkSum += res.WorkSum
		agg.Breakdown.Merge(&res.Breakdown)
		agg.Counters.Merge(&res.Counters)
	}
	fmt.Printf("  partitioned replay: %d partition(s) across %d file(s), %d workers, all boundary checkpoints verified\n",
		parts, len(files), workers)
	if rec != nil {
		name := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
		rec.SetManifest(obs.Manifest{
			Scheme:      scheme,
			Workload:    "trace:" + name,
			Ops:         int(events),
			Cores:       cfg.Cores,
			Epoch:       rec.EpochLen(),
			ConfigHash:  obs.ConfigHash(cfg),
			ToolVersion: obs.ToolVersion,
		})
		paths, err := rec.ExportDir(obsOut, name+"-"+scheme)
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			fmt.Printf("  wrote %s\n", p)
		}
	}
	return agg, events
}

// inputs resolves -i: a file is itself; a directory yields its sorted
// *.pmotrc / *.trace members (a pmod -trace-out capture directory).
func inputs(in string) []string {
	needIn(in)
	fi, err := os.Stat(in)
	if err != nil {
		fatal(err)
	}
	if !fi.IsDir() {
		return []string{in}
	}
	var files []string
	for _, pat := range []string{"*.pmotrc", "*.trace"} {
		m, err := filepath.Glob(filepath.Join(in, pat))
		if err != nil {
			fatal(err)
		}
		files = append(files, m...)
	}
	sort.Strings(files)
	if len(files) == 0 {
		fatal(fmt.Errorf("%s: no *.pmotrc or *.trace files", in))
	}
	return files
}

func replayInto(path string, sink trace.Sink) uint64 {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := trace.Replay(f, sink)
	if err != nil {
		fatal(err)
	}
	return n
}

func needIn(in string) {
	if in == "" {
		fatal(fmt.Errorf("-i is required"))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmotrace {record|stat|audit|replay} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmotrace:", err)
	os.Exit(1)
}
