// Command pmorouter is the cluster tier's front end: it speaks the pmod
// wire protocol to clients and routes every session to the pmod backend
// that owns its pool under rendezvous hashing, relaying frames
// (including v2 BATCH containers) verbatim from then on.
//
// Usage:
//
//	pmorouter -listen 127.0.0.1:7000 -backends 127.0.0.1:7070,127.0.0.1:7071
//	pmorouter -listen 127.0.0.1:0 -addr-file /tmp/router.addr -backends-file backends.txt
//	pmorouter -backends ... -metrics 127.0.0.1:9091
//
// A down backend never causes failover — its pools are durable state
// that no other node holds, so the router answers a typed UNAVAILABLE
// until the owner returns. Backend saturation answers RETRY. A
// pre-session STATS request returns the router's own Prometheus
// snapshot; an in-session STATS relays to the owning backend.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// relays finish, and every live upstream session is CLOSEd so backends
// see clean departures.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"domainvirt/internal/buildinfo"
	"domainvirt/internal/cluster"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", "127.0.0.1:7000", "address to serve the wire protocol on")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file (for -listen :0 scripting)")
		backends     = flag.String("backends", "", "comma-separated pmod backend addresses")
		backendsFile = flag.String("backends-file", "", "read backend addresses (one per line, # comments) from this file")
		dialTimeout  = flag.Duration("dial-timeout", 2*time.Second, "upstream dial attempt bound")
		dialRetries  = flag.Int("dial-retries", 2, "transient upstream dial retries (with doubling backoff)")
		dialBackoff  = flag.Duration("dial-backoff", 50*time.Millisecond, "initial upstream dial retry backoff")
		ioTimeout    = flag.Duration("io-timeout", 30*time.Second, "per-relay upstream I/O bound (negative disables)")
		maxConns     = flag.Int("max-conns", 0, "upstream connection cap per backend; past it OPENs get RETRY (0 = unlimited)")
		maxIdle      = flag.Int("max-idle", 64, "idle upstream conns kept per backend for session reuse")
		healthEvery  = flag.Duration("health-every", time.Second, "backend health probe interval (negative disables)")
		failAfter    = flag.Int("fail-after", 2, "consecutive failed probes that mark a backend down")
		metrics      = flag.String("metrics", "", "serve Prometheus text metrics on this HTTP address (empty = off)")
		drainFor     = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmorouter"))
		return 0
	}

	addrs, err := backendList(*backends, *backendsFile)
	if err != nil {
		return fail(err)
	}
	r, err := cluster.NewRouter(cluster.Options{
		Backends:           addrs,
		DialTimeout:        *dialTimeout,
		DialRetries:        *dialRetries,
		DialBackoff:        *dialBackoff,
		IOTimeout:          *ioTimeout,
		MaxConnsPerBackend: *maxConns,
		MaxIdlePerBackend:  *maxIdle,
		HealthEvery:        *healthEvery,
		FailAfter:          *failAfter,
		Logf:               log.New(os.Stderr, "pmorouter: ", 0).Printf,
	})
	if err != nil {
		return fail(err)
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()), 0o644); err != nil {
			return fail(err)
		}
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			r.WriteMetrics(w)
		})
		msrv := &http.Server{Addr: *metrics, Handler: mux}
		go msrv.ListenAndServe()
		defer msrv.Close()
	}

	fmt.Fprintf(os.Stderr, "%s listening on %s, routing %d backend(s)\n",
		buildinfo.Stamp("pmorouter"), lis.Addr(), len(addrs))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.Serve(lis) }()

	select {
	case err := <-done:
		if err != nil {
			return fail(err)
		}
		return 0
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "pmorouter: %v, draining (%v budget)\n", sig, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			return fail(fmt.Errorf("drain: %w", err))
		}
		if err := <-done; err != nil {
			return fail(err)
		}
		fmt.Fprintln(os.Stderr, "pmorouter: drained cleanly")
		return 0
	}
}

// backendList merges the -backends and -backends-file sources.
func backendList(flat, file string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(flat, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			addrs = append(addrs, line)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no backends: set -backends or -backends-file")
	}
	return addrs, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pmorouter:", err)
	return 1
}
