// Command pmosim runs one benchmark workload under one protection scheme
// on the simulated machine and prints cycle counts, permission-switch
// rates, and the overhead breakdown.
//
// Usage:
//
//	pmosim -workload avl -scheme domainvirt -pmos 256 -ops 10000
//	pmosim -workload echo -scheme mpk -ops 20000 -compare
//	pmosim -workload avl -scheme mpkvirt -obs-out obs/ -obs-epoch 10000
//	pmosim -conform -conform-programs 1000 -conform-out corpus/
//	pmosim -crashconform -crashconform-workloads 200 -crashconform-out crashes/
//
// -obs-out attaches the observability recorder to the run and exports
// the run manifest, the epoch-sampled counter time series (JSONL and
// CSV), and a Prometheus text snapshot into the directory. The exported
// files are byte-identical across runs with the same seed; wall-clock
// time is printed to stdout only.
//
// -conform runs the differential conformance campaign instead of a
// workload: generated trace programs are replayed through every
// protection engine and checked for verdict, fault-attribution, and
// cycle-accounting agreement. Exits nonzero on any divergence, leaving
// minimized .prog repros in -conform-out.
//
// -crashconform runs the crash-consistency conformance sweep instead of
// a workload: generated durable transactions are recorded at
// persistence-media granularity, crashed after every recorded step
// under every fault mode (strict, dropped tails, reordered flushes,
// torn stores), recovered, and checked for prefix consistency. Exits
// nonzero on any violation, leaving .crash repros in -crashconform-out.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/obs"
	"domainvirt/internal/stats"
)

func main() {
	os.Exit(run())
}

// run carries the whole command so that profile shutdown (a deferred
// stop) happens before the process exits; os.Exit in main would skip it.
func run() int {
	var (
		wl      = flag.String("workload", "avl", "workload name ("+strings.Join(domainvirt.Workloads(), ", ")+")")
		scheme  = flag.String("scheme", "domainvirt", "protection scheme (baseline, lowerbound, mpk, libmpk, mpkvirt, domainvirt)")
		pmos    = flag.Int("pmos", 64, "number of PMOs (multi-PMO workloads)")
		ops     = flag.Int("ops", 10000, "measured operations")
		initial = flag.Int("init", 1024, "initial elements")
		threads = flag.Int("threads", 1, "worker threads")
		cores   = flag.Int("cores", 1, "simulated cores")
		seed    = flag.Int64("seed", 42, "workload RNG seed")
		compare = flag.Bool("compare", false, "run every scheme and print an overhead comparison")

		workers  = flag.Int("workers", 0, "concurrent scheme cells for -compare (0 = GOMAXPROCS)")
		snapshot = flag.Bool("snapshot", true, "share warmup machine checkpoints across -compare cells")

		obsOut   = flag.String("obs-out", "", "directory for observability exports (manifest, time series, metrics)")
		obsEpoch = flag.Uint64("obs-epoch", 0, "sampling epoch in retired instructions (0 disables the time series)")

		cpuprofile   = flag.String("cpuprofile", "", "write a host CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a host heap profile to this file at exit")
		runtimetrace = flag.String("runtimetrace", "", "write a host runtime execution trace to this file")

		conform         = flag.Bool("conform", false, "run the differential conformance campaign instead of a workload")
		conformPrograms = flag.Int("conform-programs", 1000, "number of generated programs to replay (-conform)")
		conformSeed     = flag.Int64("conform-seed", 1, "campaign seed offset (-conform)")
		conformOut      = flag.String("conform-out", "", "directory for minimized .prog repros of divergences (-conform)")

		crashConform          = flag.Bool("crashconform", false, "run the crash-consistency conformance sweep instead of a workload")
		crashConformWorkloads = flag.Int("crashconform-workloads", 200, "number of generated transaction workloads to sweep (-crashconform)")
		crashConformSeed      = flag.Int64("crashconform-seed", 1, "first workload seed (-crashconform)")
		crashConformSeeds     = flag.Int("crashconform-seeds", 3, "fault-injection seeds per crash point and mode (-crashconform)")
		crashConformOut       = flag.String("crashconform-out", "", "directory for .crash repros of failing workloads (-crashconform)")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmosim"))
		return 0
	}

	stopProfiles, err := obs.StartHostProfiles(*cpuprofile, *memprofile, *runtimetrace)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "pmosim:", err)
		}
	}()

	cfg := domainvirt.DefaultConfig()
	cfg.Cores = *cores

	if *conform {
		rep, err := domainvirt.Conform(domainvirt.ConformOptions{
			Programs:  *conformPrograms,
			Seed:      *conformSeed,
			CorpusDir: *conformOut,
		})
		if err != nil {
			return fail(err)
		}
		fmt.Print(rep.Summary())
		if rep.Diverged() {
			return 1
		}
		return 0
	}
	if *crashConform {
		rep, err := domainvirt.CrashConform(domainvirt.CrashConformOptions{
			Workloads:  *crashConformWorkloads,
			Seed:       *crashConformSeed,
			FaultSeeds: *crashConformSeeds,
			CorpusDir:  *crashConformOut,
		})
		if err != nil {
			return fail(err)
		}
		fmt.Print(rep.Summary())
		if rep.Failed() {
			return 1
		}
		return 0
	}
	p := domainvirt.Params{
		NumPMOs:      *pmos,
		Ops:          *ops,
		InitialElems: *initial,
		Threads:      *threads,
		Seed:         *seed,
	}

	if *compare {
		if err := runCompare(*wl, p, cfg, *workers, *snapshot); err != nil {
			return fail(err)
		}
		return 0
	}

	if *obsOut != "" {
		res, rec, err := domainvirt.RunObserved(*wl, p, domainvirt.Scheme(*scheme), cfg,
			domainvirt.ObsOptions{Epoch: *obsEpoch})
		if err != nil {
			return fail(err)
		}
		printResult(*wl, res, cfg)
		paths, err := rec.ExportDir(*obsOut, *wl+"-"+*scheme)
		if err != nil {
			return fail(err)
		}
		man := rec.Manifest()
		fmt.Printf("observability: %d epoch samples in %v wall time\n", len(rec.Samples()), man.Wall.Round(1e6))
		for _, p := range paths {
			fmt.Printf("  wrote %s\n", p)
		}
		return 0
	}

	res, err := domainvirt.Run(*wl, p, domainvirt.Scheme(*scheme), cfg)
	if err != nil {
		return fail(err)
	}
	printResult(*wl, res, cfg)
	return 0
}

// runCompare evaluates every scheme on the experiment worker pool. The
// per-scheme warmups differ (each scheme shapes machine state its own
// way), so within one invocation the snapshot cache only avoids work if
// a scheme repeats; it is kept on by default so the flag surface matches
// pmobench and the comparison path exercises the cached code path.
func runCompare(wl string, p domainvirt.Params, cfg domainvirt.Config, workers int, snapshot bool) error {
	schemes := []domainvirt.Scheme{
		domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound,
		domainvirt.SchemeLibmpk, domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt,
	}
	if p.NumPMOs <= 15 {
		schemes = append(schemes[:2], append([]domainvirt.Scheme{domainvirt.SchemeMPK}, schemes[2:]...)...)
	}
	opt := domainvirt.DefaultExpOptions()
	opt.Cfg = cfg
	opt.Workers = workers
	if snapshot {
		opt.Snapshots = domainvirt.NewSnapshotCache()
	}
	res, err := domainvirt.RunSchemesOpt(wl, p, opt, schemes...)
	if err != nil {
		return err
	}
	base := res[domainvirt.SchemeBaseline]
	fmt.Printf("workload %s: %d ops over %d PMOs, baseline %d cycles\n\n", wl, p.Ops, p.NumPMOs, base.Cycles)
	fmt.Printf("%-12s %14s %10s %14s\n", "scheme", "cycles", "overhead", "switches/sec")
	for _, s := range schemes {
		r := res[s]
		fmt.Printf("%-12s %14d %9.2f%% %14.0f\n", s, r.Cycles, r.OverheadPct(base), r.SwitchesPerSec(cfg.ClockHz))
	}
	return nil
}

func printResult(wl string, res domainvirt.Result, cfg domainvirt.Config) {
	c := res.Counters
	fmt.Printf("workload %s under %s\n", wl, res.Scheme)
	fmt.Printf("  cycles:            %d\n", res.Cycles)
	fmt.Printf("  instructions:      %d\n", c.Instructions)
	fmt.Printf("  loads/stores:      %d / %d\n", c.Loads, c.Stores)
	fmt.Printf("  TLB hits L1/L2:    %d / %d, misses (walks): %d\n", c.TLBL1Hits, c.TLBL2Hits, c.TLBMisses)
	fmt.Printf("  TLB flushed:       %d entries, refills charged to invalidations: %d\n", c.TLBFlushed, c.DebtRefills)
	fmt.Printf("  permission switches: %d (%.0f/sec at %.1f GHz)\n",
		c.PermSwitches, res.SwitchesPerSec(cfg.ClockHz), cfg.ClockHz/1e9)
	fmt.Printf("  evictions:         %d\n", c.Evictions)
	fmt.Printf("  NVM reads/writes:  %d / %d\n", c.NVMReads, c.NVMWrites)
	if ov := res.Breakdown.OverheadCycles(); ov > 0 {
		fmt.Printf("  protection overhead cycles: %d\n", ov)
		for i := 1; i < stats.NumCategories; i++ {
			cat := stats.Category(i)
			if v := res.Breakdown.Cycles[cat]; v > 0 {
				fmt.Printf("    %-20s %12d cycles (%d events)\n", cat.String()+":", v, res.Breakdown.Counts[cat])
			}
		}
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pmosim:", err)
	return 1
}
