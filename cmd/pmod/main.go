// Command pmod is the PMO service daemon: it serves a persistent-memory
// object store to network clients over the pmod wire protocol, with a
// sharded session table, a bounded worker pool (full queue → RETRY),
// idle-session eviction, and per-client least-privilege domain windows
// when a protection engine is selected.
//
// Usage:
//
//	pmod -listen 127.0.0.1:7070 -engine domainvirt
//	pmod -listen 127.0.0.1:0 -addr-file /tmp/pmod.addr -store /var/lib/pmod
//	pmod -listen 127.0.0.1:7070 -metrics 127.0.0.1:9090
//	pmod -trace-sample 64 -trace-slow 5ms -trace-spans spans.jsonl
//	pmod -trace-out /tmp/capture -trace-rotate 67108864
//
// With -trace-sample/-trace-slow, every request is timed through the
// stage taxonomy (read/decode, queue, lock, engine, persist, write);
// retained spans drain over the TRACE wire op, the /debug/spans HTTP
// endpoint (with -debug -metrics), or the -trace-spans JSONL dump. With
// -trace-out, each shard tees its live protection-engine event stream
// into binary trace segments that `pmotrace replay` can re-run under
// any scheme.
//
// With -store, interrupted durable transactions left behind by a
// crashed predecessor are recovered (redone or discarded) before the
// listener opens, and the store is re-synced to disk every -sync.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, every
// queued request finishes and flushes, sessions detach, and a
// file-backed store syncs before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/pmo"
	"domainvirt/internal/reqtrace"
	"domainvirt/internal/serve"
	"domainvirt/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "address to serve the wire protocol on")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file (for -listen :0 scripting)")
		shards   = flag.Int("shards", 8, "session-table shards (rounded up to a power of two)")
		workers  = flag.Int("workers", 0, "request workers (0 = 2*GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "request queue depth; a full queue answers RETRY")
		engine   = flag.String("engine", "domainvirt", "protection scheme per shard (none, mpk, libmpk, mpkvirt, domainvirt)")
		storeDir = flag.String("store", "", "file-backed store directory (empty = in-memory)")
		metrics  = flag.String("metrics", "", "serve Prometheus text metrics on this HTTP address (empty = off)")
		idle     = flag.Duration("idle", 2*time.Minute, "evict sessions idle this long (0 disables)")
		syncEach = flag.Duration("sync", time.Second, "background sync interval for a file-backed store")
		poolSize = flag.Uint64("poolsize", 1<<20, "pool size when OPEN asks for 0")
		drainFor = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM")
		version  = flag.Bool("version", false, "print version and exit")

		trSample = flag.Int("trace-sample", 0, "retain every Nth request span (0 = tracing off unless -trace-slow)")
		trSlow   = flag.Duration("trace-slow", 0, "always retain spans of requests slower than this (0 = off)")
		trRing   = flag.Int("trace-ring", 1024, "retained-span ring size (rounded up to a power of two)")
		trSpans  = flag.String("trace-spans", "", "write the retained spans as JSONL to this file on drain")
		trOut    = flag.String("trace-out", "", "record live traffic to per-shard binary trace segments in this directory")
		trRotate = flag.Int64("trace-rotate", 0, "rotate capture segments at this many bytes (0 = single segment per shard)")
		debug    = flag.Bool("debug", false, "expose /debug/spans on the -metrics HTTP server")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmod"))
		return 0
	}

	var store *pmo.Store
	if *storeDir != "" {
		st, err := domainvirt.OpenStore(*storeDir)
		if err != nil {
			return fail(err)
		}
		// A previous process may have died mid-transaction: settle every
		// pool's redo log before serving any client.
		redone, err := domainvirt.RecoverStore(st)
		if err != nil {
			return fail(fmt.Errorf("recover store %s: %w", *storeDir, err))
		}
		if redone > 0 {
			fmt.Fprintf(os.Stderr, "pmod: recovered store: %d interrupted transaction(s) redone\n", redone)
		}
		store = st
	}
	opts := serve.Options{
		Store:           store,
		Shards:          *shards,
		Workers:         *workers,
		QueueDepth:      *queue,
		IdleTimeout:     *idle,
		SyncEvery:       *syncEach,
		Engine:          sim.Scheme(*engine),
		DefaultPoolSize: *poolSize,
		Trace: reqtrace.Config{
			SampleEvery: *trSample,
			Slow:        *trSlow,
			RingSize:    *trRing,
		},
	}
	if *trOut != "" {
		dir := *trOut
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(err)
		}
		opts.CaptureOpen = func(shard, seg int) (io.WriteCloser, error) {
			return os.Create(filepath.Join(dir, fmt.Sprintf("shard-%d-seg-%d.pmotrc", shard, seg)))
		}
		opts.CaptureMaxSegmentBytes = *trRotate
	}
	srv := serve.NewServer(opts)

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()), 0o644); err != nil {
			return fail(err)
		}
	}

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			srv.WriteMetrics(w)
		})
		if *debug {
			mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
				tr := srv.Tracer()
				if tr == nil {
					http.Error(w, "tracing disabled (run with -trace-sample or -trace-slow)", http.StatusNotFound)
					return
				}
				w.Header().Set("Content-Type", "application/x-ndjson")
				tr.WriteSpansJSONL(w)
			})
		}
		msrv := &http.Server{Addr: *metrics, Handler: mux}
		go msrv.ListenAndServe()
		defer msrv.Close()
	}

	eng := *engine
	if eng == "" {
		eng = "none"
	}
	fmt.Fprintf(os.Stderr, "%s listening on %s (engine=%s shards=%d)\n",
		buildinfo.Stamp("pmod"), lis.Addr(), eng, *shards)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	select {
	case err := <-done:
		if err != nil {
			return fail(err)
		}
		return finish(srv, *trSpans)
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "pmod: %v, draining (%v budget)\n", sig, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fail(fmt.Errorf("drain: %w", err))
		}
		if err := <-done; err != nil {
			return fail(err)
		}
		fmt.Fprintln(os.Stderr, "pmod: drained cleanly")
		return finish(srv, *trSpans)
	}
}

// finish runs the post-drain observability epilogue: the retained-span
// dump and the capture accounting. Shutdown has already flushed and
// closed the capture segments.
func finish(srv *serve.Server, spansPath string) int {
	if spansPath != "" {
		if tr := srv.Tracer(); tr != nil {
			f, err := os.Create(spansPath)
			if err != nil {
				return fail(err)
			}
			if err := tr.WriteSpansJSONL(f); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
			fin, sampled, slow := tr.Counts()
			fmt.Fprintf(os.Stderr, "pmod: wrote span dump to %s (%d finished, %d sampled, %d slow)\n",
				spansPath, fin, sampled, slow)
		} else {
			fmt.Fprintln(os.Stderr, "pmod: -trace-spans set but tracing was disabled; nothing written")
		}
	}
	if st, ok := srv.CaptureStats(); ok {
		fmt.Fprintf(os.Stderr, "pmod: capture: %d events (%d dropped), %d bytes, %d segment(s)\n",
			st.Events, st.Dropped, st.Bytes, st.Segments)
		if err := srv.CaptureErr(); err != nil {
			return fail(fmt.Errorf("capture: %w", err))
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pmod:", err)
	return 1
}
