// Command pmoworker is the distributed-sweep cell executor: a daemon
// that serves experiment grid cells shipped by a coordinating pmobench
// (or any ExpOptions.SweepAddrs user) over the internal/sweep protocol.
//
// Usage:
//
//	pmoworker -listen 127.0.0.1:0 -addr-file /tmp/w1.addr -snapshot-dir /var/cache/pmo
//
// Each connection executes one cell at a time; a coordinator opens
// several connections per worker for intra-worker parallelism. With
// -snapshot-dir the worker keeps a persistent warmup-checkpoint store:
// snapshots it misses are pulled from the coordinator mid-cell, and
// snapshots it builds survive for later sweeps. Killing a worker
// mid-sweep is safe — the coordinator re-runs its lost cells locally
// and the sweep's outputs are byte-identical either way.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file (for -listen :0 scripting)")
		snapDir  = flag.String("snapshot-dir", "", "persistent warmup-checkpoint store directory (empty = in-memory only)")
		quiet    = flag.Bool("quiet", false, "suppress per-cell log lines")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmoworker"))
		return 0
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)

	var cache *domainvirt.SnapshotCache
	var err error
	if *snapDir != "" {
		cache, err = domainvirt.NewSnapshotCacheDir(*snapDir)
	} else {
		cache = domainvirt.NewSnapshotCache()
	}
	if err != nil {
		logger.Printf("pmoworker: %v", err)
		return 1
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Printf("pmoworker: %v", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()), 0o644); err != nil {
			logger.Printf("pmoworker: %v", err)
			return 1
		}
	}
	logger.Printf("pmoworker: listening on %s (snapshot-dir=%q)", lis.Addr(), *snapDir)

	srv := &sweep.Server{
		Run: func(spec []byte, fetch sweep.Fetch) ([]byte, error) {
			return domainvirt.RunSweepCell(spec, cache, fetch)
		},
	}
	if !*quiet {
		srv.Log = logger.Printf
	}
	if err := srv.Serve(lis); err != nil {
		logger.Printf("pmoworker: %v", err)
		return 1
	}
	return 0
}
