// Command pmoload is a load generator for a pmod daemon or a pmorouter
// cluster front end. In its default (single-node) shape, N concurrent
// closed-loop clients each open their own session pool and issue a
// randomized read/write/transaction mix until the duration elapses,
// verifying on every read that the bytes belong to their own session.
//
// Cluster shape (-pools > 0): sessions draw their pool from a shared,
// optionally Zipf-skewed keyspace, churn through CLOSE/re-OPEN cycles
// (-churn), pipeline ops through v2 BATCH frames (-batch), and can run
// open-loop at a target arrival rate (-rate). With -nodes the report
// breaks latency and errors down per cluster node using the router's
// own placement function.
//
// Usage:
//
//	pmoload -addr 127.0.0.1:7070 -clients 50 -duration 2s
//	pmoload -addr 127.0.0.1:7000 -pools 1000 -zipf 1.2 -churn 0.01 -batch 8 \
//	        -nodes 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
//
// Runs are reproducible: equal flags plus an equal -seed replay the
// same op plan per client. Exit status is nonzero if any client saw a
// protocol error or an isolation violation (bytes from another pool's
// write pattern); -tolerate-unavailable downgrades a down backend's
// typed UNAVAILABLE/DRAINING answers from errors to a counted outage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"domainvirt/internal/buildinfo"
	"domainvirt/internal/cluster"
	"domainvirt/internal/reqtrace"
	"domainvirt/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "pmod daemon or pmorouter address")
		addrFile = flag.String("addr-file", "", "read the target address from this file (overrides -addr)")
		clients  = flag.Int("clients", 50, "concurrent clients")
		duration = flag.Duration("duration", 2*time.Second, "run length")
		mix      = flag.Float64("mix", 0.7, "read fraction of the op mix [0,1]")
		tx       = flag.Float64("tx", 0.1, "fraction of writes issued as TX_COMMIT [0,1]")
		value    = flag.Int("value", 128, "bytes per write / read span")
		poolSize = flag.Uint64("poolsize", 1<<20, "session pool size")
		seed     = flag.Int64("seed", 1, "plan RNG seed; equal seeds replay equal op plans")
		trace    = flag.Bool("trace", false, "drain the daemon's request spans (TRACE op) and print the stage breakdown")

		pools    = flag.Int("pools", 0, "shared pool keyspace size (0 = one private pool per client)")
		zipfS    = flag.Float64("zipf", 0, "Zipf skew s for pool popularity (>1 = skewed, else uniform)")
		churn    = flag.Float64("churn", 0, "per-iteration probability of session close/re-open")
		batch    = flag.Int("batch", 1, "ops pipelined per v2 BATCH frame (1 = scalar requests)")
		rate     = flag.Float64("rate", 0, "open-loop aggregate arrival rate in ops/s (0 = closed loop)")
		ioTO     = flag.Duration("io-timeout", 0, "per-round-trip I/O deadline (0 = none)")
		nodes    = flag.String("nodes", "", "comma-separated cluster node addresses for per-node attribution (the router's backend list)")
		tolerate = flag.Bool("tolerate-unavailable", false, "count UNAVAILABLE/DRAINING answers instead of failing (node-outage drills)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmoload"))
		return 0
	}
	target := *addr
	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			return fail(err)
		}
		target = string(b)
	}

	opts := serve.LoadOptions{
		Addr:                target,
		Clients:             *clients,
		Duration:            *duration,
		ReadFraction:        *mix,
		TxFraction:          *tx,
		ValueSize:           *value,
		PoolSize:            *poolSize,
		Seed:                *seed,
		FetchTrace:          *trace,
		Pools:               *pools,
		ZipfS:               *zipfS,
		Churn:               *churn,
		Batch:               *batch,
		Rate:                *rate,
		IOTimeout:           *ioTO,
		TolerateUnavailable: *tolerate,
	}
	if *nodes != "" {
		for _, n := range strings.Split(*nodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				opts.NodeNames = append(opts.NodeNames, n)
			}
		}
		names := opts.NodeNames
		// Attribute each pool to the node the router would route it to.
		opts.NodeOf = func(pool string) int { return cluster.PickIndex(pool, names) }
	}

	fmt.Fprintf(os.Stderr, "%s: %d clients -> %s for %v (read=%.2f tx=%.2f value=%dB pools=%d batch=%d)\n",
		buildinfo.Stamp("pmoload"), *clients, target, *duration, *mix, *tx, *value, *pools, *batch)
	rep, err := serve.RunLoad(opts)
	if err != nil {
		return fail(err)
	}

	fmt.Printf("clients              %d\n", rep.Clients)
	fmt.Printf("elapsed              %v\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("ops                  %d (reads %d, writes %d, txs %d)\n", rep.Ops, rep.Reads, rep.Writes, rep.Txs)
	if rep.Batches > 0 {
		fmt.Printf("batches              %d (%.1f ops per round trip)\n", rep.Batches, float64(rep.Ops)/float64(rep.Batches))
	}
	fmt.Printf("throughput           %.0f ops/s\n", rep.Throughput())
	fmt.Printf("retries (backpressure) %d\n", rep.Retries)
	fmt.Printf("evictions absorbed   %d\n", rep.Evicted)
	if rep.Churns > 0 || rep.Conflicts > 0 {
		fmt.Printf("session churns       %d (attach conflicts re-picked %d)\n", rep.Churns, rep.Conflicts)
	}
	if rep.Unavailable > 0 {
		fmt.Printf("unavailable absorbed %d\n", rep.Unavailable)
	}
	fmt.Printf("errors               %d\n", rep.Errors)
	fmt.Printf("isolation violations %d\n", rep.IsolationViolations)
	if rep.Latency.Count > 0 {
		fmt.Printf("latency p50          %s\n", time.Duration(rep.Latency.Quantile(0.50)))
		fmt.Printf("latency p95          %s\n", time.Duration(rep.Latency.Quantile(0.95)))
		fmt.Printf("latency p99          %s\n", time.Duration(rep.Latency.Quantile(0.99)))
		fmt.Printf("latency p99.9        %s\n", time.Duration(rep.Latency.Quantile(0.999)))
	}
	for i := range rep.PerNode {
		n := &rep.PerNode[i]
		if n.Ops == 0 && n.Unavailable == 0 && n.Errors == 0 {
			fmt.Printf("node %-21s no traffic\n", n.Name)
			continue
		}
		fmt.Printf("node %-21s ops %d  unavailable %d  p50 %s  p99 %s\n",
			n.Name, n.Ops, n.Unavailable,
			time.Duration(n.Latency.Quantile(0.50)), time.Duration(n.Latency.Quantile(0.99)))
	}
	switch {
	case rep.Trace != nil:
		b := rep.Trace
		fmt.Printf("daemon spans         %d retained (%d sampled, %d slow)\n", b.Spans, b.Sampled, b.Slow)
		fmt.Printf("  queue wait         p50 %s  p99 %s\n",
			time.Duration(b.Queue.Quantile(0.50)), time.Duration(b.Queue.Quantile(0.99)))
		fmt.Printf("  service time       p50 %s  p99 %s\n",
			time.Duration(b.Service.Quantile(0.50)), time.Duration(b.Service.Quantile(0.99)))
		fmt.Printf("  server total       p50 %s  p99 %s  p99.9 %s\n",
			time.Duration(b.Total.Quantile(0.50)), time.Duration(b.Total.Quantile(0.99)),
			time.Duration(b.Total.Quantile(0.999)))
		for s := reqtrace.Stage(0); s < reqtrace.NumStages; s++ {
			h := &b.Stages[s]
			if h.Count == 0 {
				continue
			}
			fmt.Printf("  stage %-12s p50 %s  p99 %s\n", s.String(),
				time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.99)))
		}
	case *trace:
		fmt.Fprintln(os.Stderr, "pmoload: -trace set but the daemon retained no spans (is it running with -trace-sample?)")
	}
	if rep.FirstErr != "" {
		fmt.Fprintln(os.Stderr, "pmoload: first error:", rep.FirstErr)
	}
	if rep.Errors > 0 || rep.IsolationViolations > 0 {
		return 1
	}
	if rep.Ops == 0 {
		fmt.Fprintln(os.Stderr, "pmoload: no operations completed")
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pmoload:", err)
	return 1
}
