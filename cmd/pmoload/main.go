// Command pmoload is a closed-loop load generator for a pmod daemon:
// N concurrent clients each open their own session pool and issue a
// randomized read/write/transaction mix until the duration elapses,
// verifying on every read that the bytes belong to their own session.
//
// Usage:
//
//	pmoload -addr 127.0.0.1:7070 -clients 50 -duration 2s
//	pmoload -addr 127.0.0.1:7070 -clients 100 -mix 0.9 -tx 0.2 -value 256
//
// Exit status is nonzero if any client saw a protocol error or an
// isolation violation (bytes from another client's write pattern).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"domainvirt/internal/buildinfo"
	"domainvirt/internal/reqtrace"
	"domainvirt/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "pmod daemon address")
		addrFile = flag.String("addr-file", "", "read the daemon address from this file (overrides -addr)")
		clients  = flag.Int("clients", 50, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 2*time.Second, "run length")
		mix      = flag.Float64("mix", 0.7, "read fraction of the op mix [0,1]")
		tx       = flag.Float64("tx", 0.1, "fraction of writes issued as TX_COMMIT [0,1]")
		value    = flag.Int("value", 128, "bytes per write / read span")
		poolSize = flag.Uint64("poolsize", 1<<20, "per-client session pool size")
		seed     = flag.Int64("seed", 1, "client RNG seed base")
		trace    = flag.Bool("trace", false, "drain the daemon's request spans (TRACE op) and print the stage breakdown")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmoload"))
		return 0
	}
	target := *addr
	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			return fail(err)
		}
		target = string(b)
	}

	fmt.Fprintf(os.Stderr, "%s: %d clients -> %s for %v (read=%.2f tx=%.2f value=%dB)\n",
		buildinfo.Stamp("pmoload"), *clients, target, *duration, *mix, *tx, *value)
	rep, err := serve.RunLoad(serve.LoadOptions{
		Addr:         target,
		Clients:      *clients,
		Duration:     *duration,
		ReadFraction: *mix,
		TxFraction:   *tx,
		ValueSize:    *value,
		PoolSize:     *poolSize,
		Seed:         *seed,
		FetchTrace:   *trace,
	})
	if err != nil {
		return fail(err)
	}

	fmt.Printf("clients              %d\n", rep.Clients)
	fmt.Printf("elapsed              %v\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("ops                  %d (reads %d, writes %d, txs %d)\n", rep.Ops, rep.Reads, rep.Writes, rep.Txs)
	fmt.Printf("throughput           %.0f ops/s\n", rep.Throughput())
	fmt.Printf("retries (backpressure) %d\n", rep.Retries)
	fmt.Printf("evictions absorbed   %d\n", rep.Evicted)
	fmt.Printf("errors               %d\n", rep.Errors)
	fmt.Printf("isolation violations %d\n", rep.IsolationViolations)
	if rep.Latency.Count > 0 {
		fmt.Printf("latency p50          %s\n", time.Duration(rep.Latency.Quantile(0.50)))
		fmt.Printf("latency p95          %s\n", time.Duration(rep.Latency.Quantile(0.95)))
		fmt.Printf("latency p99          %s\n", time.Duration(rep.Latency.Quantile(0.99)))
		fmt.Printf("latency p99.9        %s\n", time.Duration(rep.Latency.Quantile(0.999)))
	}
	switch {
	case rep.Trace != nil:
		b := rep.Trace
		fmt.Printf("daemon spans         %d retained (%d sampled, %d slow)\n", b.Spans, b.Sampled, b.Slow)
		fmt.Printf("  queue wait         p50 %s  p99 %s\n",
			time.Duration(b.Queue.Quantile(0.50)), time.Duration(b.Queue.Quantile(0.99)))
		fmt.Printf("  service time       p50 %s  p99 %s\n",
			time.Duration(b.Service.Quantile(0.50)), time.Duration(b.Service.Quantile(0.99)))
		fmt.Printf("  server total       p50 %s  p99 %s  p99.9 %s\n",
			time.Duration(b.Total.Quantile(0.50)), time.Duration(b.Total.Quantile(0.99)),
			time.Duration(b.Total.Quantile(0.999)))
		for s := reqtrace.Stage(0); s < reqtrace.NumStages; s++ {
			h := &b.Stages[s]
			if h.Count == 0 {
				continue
			}
			fmt.Printf("  stage %-12s p50 %s  p99 %s\n", s.String(),
				time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.99)))
		}
	case *trace:
		fmt.Fprintln(os.Stderr, "pmoload: -trace set but the daemon retained no spans (is it running with -trace-sample?)")
	}
	if rep.FirstErr != "" {
		fmt.Fprintln(os.Stderr, "pmoload: first error:", rep.FirstErr)
	}
	if rep.Errors > 0 || rep.IsolationViolations > 0 {
		return 1
	}
	if rep.Ops == 0 {
		fmt.Fprintln(os.Stderr, "pmoload: no operations completed")
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pmoload:", err)
	return 1
}
