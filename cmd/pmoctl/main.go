// Command pmoctl manages a file-backed PMO store: create, list, inspect,
// dump, and remove pools, and recover interrupted transactions — the
// operator-facing counterpart of the OS-managed PMO namespace.
//
// Usage:
//
//	pmoctl -store /var/pmo create -name sessions -size 8388608 -owner web
//	pmoctl -store /var/pmo ls
//	pmoctl -store /var/pmo info -name sessions
//	pmoctl -store /var/pmo dump -name sessions -off 4096 -len 64
//	pmoctl -store /var/pmo recover -name sessions
//	pmoctl -store /var/pmo verify -name sessions
//	pmoctl -store /var/pmo rm -name sessions
package main

import (
	"flag"
	"fmt"
	"os"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/txn"
)

func main() {
	storeDir := flag.String("store", "", "store directory (required)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmoctl"))
		return
	}
	if *storeDir == "" || flag.NArg() < 1 {
		usage()
	}
	store, err := domainvirt.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}

	cmd := flag.Arg(0)
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	name := fs.String("name", "", "pool name")
	size := fs.Uint64("size", 8<<20, "pool size in bytes (create)")
	owner := fs.String("owner", "root", "owning user (create)")
	key := fs.String("key", "", "attach key (create)")
	off := fs.Uint64("off", 0, "offset (dump)")
	length := fs.Uint64("len", 64, "byte count (dump)")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		fatal(err)
	}

	switch cmd {
	case "create":
		need(*name)
		p, err := store.Create(*name, *size, domainvirt.ModeDefault, *owner)
		if err != nil {
			fatal(err)
		}
		if *key != "" {
			p.SetAttachKey(*key)
		}
		if err := store.Sync(); err != nil {
			fatal(err)
		}
		fmt.Printf("created pool %q: id=%d size=%d owner=%s\n", p.Name(), p.ID(), p.Size(), p.Owner())

	case "ls":
		infos := store.List()
		if len(infos) == 0 {
			fmt.Println("(empty store)")
			return
		}
		fmt.Printf("%-20s %6s %12s %10s %8s\n", "NAME", "ID", "SIZE", "POPULATED", "OWNER")
		for _, i := range infos {
			fmt.Printf("%-20s %6d %12d %9dp %8s\n", i.Name, i.ID, i.Size, i.Populated, i.Owner)
		}

	case "info":
		need(*name)
		p, ok := store.Get(*name)
		if !ok {
			fatal(fmt.Errorf("pool %q not found", *name))
		}
		logOff, logSize := p.LogArea()
		fmt.Printf("pool %q\n  id:        %d\n  size:      %d bytes\n  owner:     %s\n  mode:      %04b\n  populated: %d pages\n  root:      %v\n  log area:  off=%d size=%d\n  bump:      %d\n",
			p.Name(), p.ID(), p.Size(), p.Owner(), p.Mode(), p.PopulatedPages(), p.Root(), logOff, logSize, p.BumpNext())

	case "dump":
		need(*name)
		p, ok := store.Get(*name)
		if !ok {
			fatal(fmt.Errorf("pool %q not found", *name))
		}
		if *off+*length > p.Size() {
			fatal(fmt.Errorf("range [%d,%d) outside pool of size %d", *off, *off+*length, p.Size()))
		}
		buf := make([]byte, *length)
		p.Read(uint32(*off), buf)
		for i := 0; i < len(buf); i += 16 {
			end := i + 16
			if end > len(buf) {
				end = len(buf)
			}
			fmt.Printf("%08x  % x\n", *off+uint64(i), buf[i:end])
		}

	case "recover":
		need(*name)
		p, ok := store.Get(*name)
		if !ok {
			fatal(fmt.Errorf("pool %q not found", *name))
		}
		redone, err := txn.Recover(p)
		if err != nil {
			fatal(err)
		}
		if err := store.Sync(); err != nil {
			fatal(err)
		}
		if redone {
			fmt.Println("redo: committed transaction reapplied")
		} else {
			fmt.Println("clean: nothing to recover")
		}

	case "cp":
		need(*name)
		dst := fs.Arg(0)
		if dst == "" {
			fatal(fmt.Errorf("usage: pmoctl -store DIR cp -name SRC DST"))
		}
		cp, err := store.Snapshot(*name, dst, *owner)
		if err != nil {
			fatal(err)
		}
		if err := store.Sync(); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshotted %q -> %q (id=%d, %d pages)\n", *name, cp.Name(), cp.ID(), cp.PopulatedPages())

	case "verify":
		need(*name)
		p, ok := store.Get(*name)
		if !ok {
			fatal(fmt.Errorf("pool %q not found", *name))
		}
		rep := p.Check()
		fmt.Printf("pool %q: %d allocated blocks (%d bytes), %d free blocks (%d bytes)\n",
			p.Name(), rep.AllocBlocks, rep.AllocBytes, rep.FreeBlocks, rep.FreeBytes)
		if rep.OK() {
			fmt.Println("verify: OK")
		} else {
			for _, issue := range rep.Issues {
				fmt.Println("verify:", issue)
			}
			os.Exit(1)
		}

	case "rm":
		need(*name)
		if err := store.Remove(*name); err != nil {
			fatal(err)
		}
		fmt.Printf("removed pool %q\n", *name)

	default:
		usage()
	}
}

func need(name string) {
	if name == "" {
		fatal(fmt.Errorf("-name is required"))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmoctl -store DIR {create|ls|info|dump|cp|recover|verify|rm} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmoctl:", err)
	os.Exit(1)
}
