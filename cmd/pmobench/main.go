// Command pmobench regenerates the paper's evaluation: Tables V–VIII and
// Figures 6–7, printed as aligned tables and log2-scale ASCII charts, with
// optional CSV output for external plotting.
//
// Usage:
//
//	pmobench -experiment all
//	pmobench -experiment fig6 -csv out/
//	pmobench -experiment table7 -paper        # full paper scale (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"domainvirt"
	"domainvirt/internal/report"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "table5|table6|table7|table8|fig6|fig7|ablations|all")
		paper  = flag.Bool("paper", false, "run at the paper's full scale (100k/1M ops, stride-16 sweep)")
		ops    = flag.Int("ops", 0, "override measured operations per run")
		seed   = flag.Int64("seed", 42, "workload RNG seed")
		csvDir = flag.String("csv", "", "also write CSV files into this directory")
	)
	flag.Parse()

	opt := domainvirt.DefaultExpOptions()
	if *paper {
		opt = opt.Paper()
	}
	if *ops > 0 {
		opt.WhisperOps = *ops
		opt.MicroOps = *ops
	}
	opt.Seed = *seed

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	var fig6Cache []domainvirt.Fig6Result
	fig6 := func() ([]domainvirt.Fig6Result, error) {
		if fig6Cache != nil {
			return fig6Cache, nil
		}
		var err error
		fig6Cache, err = domainvirt.Fig6(opt)
		return fig6Cache, err
	}

	run("table5", func() error {
		rows, err := domainvirt.Table5(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.Table5Report(rows), *csvDir, "table5")
	})

	run("table6", func() error {
		rows, err := domainvirt.Table6(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.Table6Report(rows), *csvDir, "table6")
	})

	run("fig6", func() error {
		frs, err := fig6()
		if err != nil {
			return err
		}
		for _, fr := range frs {
			s := domainvirt.Fig6Series(fr)
			if err := s.RenderChart(os.Stdout, 12); err != nil {
				return err
			}
			if err := emit(s.Table(), *csvDir, "fig6-"+fr.Benchmark); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig7", func() error {
		frs, err := fig6()
		if err != nil {
			return err
		}
		f7, err := domainvirt.Fig7(frs)
		if err != nil {
			return err
		}
		s := domainvirt.Fig7Series(f7)
		if err := s.RenderChart(os.Stdout, 12); err != nil {
			return err
		}
		if err := emit(s.Table(), *csvDir, "fig7"); err != nil {
			return err
		}
		for _, x := range f7.X {
			if sp, ok := f7.SpeedupAt[x]; ok && (x == 64 || x == 1024) {
				fmt.Printf("at %4d PMOs: HW MPK virtualization %.1fx faster than libmpk, domain virtualization %.1fx faster\n",
					x, sp[0], sp[1])
			}
		}
		fmt.Println()
		return nil
	})

	run("table7", func() error {
		mv, dv, err := domainvirt.Table7(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.Table7Report(mv, dv), *csvDir, "table7")
	})

	run("table8", func() error {
		return emit(domainvirt.Table8Report(opt.Cfg), *csvDir, "table8")
	})

	run("ablations", func() error {
		placement, err := domainvirt.AblationPlacement(opt)
		if err != nil {
			return err
		}
		if err := emit(domainvirt.AblationReport(
			"Ablation: node placement (AVL, % overhead over lowerbound)", placement),
			*csvDir, "ablation-placement"); err != nil {
			return err
		}
		sizes, err := domainvirt.AblationBufferSizes(opt)
		if err != nil {
			return err
		}
		if err := emit(domainvirt.AblationReport(
			"Ablation: DTTLB/PTLB entries (AVL, 1024 PMOs)", sizes),
			*csvDir, "ablation-buffers"); err != nil {
			return err
		}
		cores, err := domainvirt.AblationCores(opt)
		if err != nil {
			return err
		}
		if err := emit(domainvirt.AblationReport(
			"Ablation: cores participating in shootdowns (AVL, 256 PMOs)", cores),
			*csvDir, "ablation-cores"); err != nil {
			return err
		}
		costs, err := domainvirt.AblationCosts(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.AblationReport(
			"Ablation: cost-parameter sensitivity (AVL, 1024 PMOs)", costs),
			*csvDir, "ablation-costs")
	})
}

func emit(t *report.Table, csvDir, name string) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmobench:", err)
	os.Exit(1)
}
