// Command pmobench regenerates the paper's evaluation: Tables V–VIII and
// Figures 6–7, printed as aligned tables and log2-scale ASCII charts, with
// optional CSV output for external plotting.
//
// Usage:
//
//	pmobench -experiment all
//	pmobench -experiment fig6 -csv out/
//	pmobench -experiment table7 -paper        # full paper scale (slow)
//	pmobench -experiment table5 -obs-out obs/ -obs-epoch 50000
//	pmobench -experiment table6 -snapshot-dir /var/cache/pmo
//	pmobench -experiment fig6 -sweep-addrs 10.0.0.2:7070,10.0.0.3:7070
//
// Progress lines ("[done/total] cell") go to stderr while results go to
// stdout, so redirecting stdout still shows the grid advancing. -obs-out
// exports per-cell run manifests, per-cell epoch series (with
// -obs-epoch), and per-scheme merged latency histograms into one
// subdirectory per experiment.
//
// -snapshot-dir keeps warmup machine checkpoints in a persistent
// content-addressed store, so a second invocation against the same
// directory re-simulates zero warmups; a final stderr line reports the
// cache's warmup/hit counters. -sweep-addrs fans grid cells out to
// pmoworker daemons; outputs are byte-identical to a local run, and
// cells lost to a dead worker re-run locally.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"domainvirt"
	"domainvirt/internal/buildinfo"
	"domainvirt/internal/obs"
	"domainvirt/internal/report"
)

func main() {
	os.Exit(run())
}

// run carries the whole command so that profile shutdown (a deferred
// stop) happens before the process exits; os.Exit in main would skip it.
func run() int {
	var (
		exp      = flag.String("experiment", "all", "table5|table6|table7|table8|fig6|fig7|ablations|horizons|all")
		paper    = flag.Bool("paper", false, "run at the paper's full scale (100k/1M ops, stride-16 sweep)")
		ops      = flag.Int("ops", 0, "override measured operations per run")
		seed     = flag.Int64("seed", 42, "workload RNG seed")
		workers  = flag.Int("workers", 0, "concurrent experiment cells (0 = GOMAXPROCS)")
		snapshot = flag.Bool("snapshot", true, "share warmup machine checkpoints across cells and experiments")
		snapDir  = flag.String("snapshot-dir", "", "persist warmup/mid-run checkpoints in this directory (implies -snapshot)")
		quiet    = flag.Bool("quiet", false, "suppress the banner and per-cell progress lines on stderr")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")

		sweepAddrs = flag.String("sweep-addrs", "", "comma-separated pmoworker addresses for distributed grids")
		sweepConns = flag.Int("sweep-conns", 0, "protocol connections (concurrent cells) per worker address (0 = 1)")

		obsOut   = flag.String("obs-out", "", "directory for per-experiment observability exports")
		obsEpoch = flag.Uint64("obs-epoch", 0, "sampling epoch in retired instructions (0 disables per-cell time series)")

		cpuprofile   = flag.String("cpuprofile", "", "write a host CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a host heap profile to this file at exit")
		runtimetrace = flag.String("runtimetrace", "", "write a host runtime execution trace to this file")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("pmobench"))
		return 0
	}

	stopProfiles, err := obs.StartHostProfiles(*cpuprofile, *memprofile, *runtimetrace)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "pmobench:", err)
		}
	}()

	opt := domainvirt.DefaultExpOptions()
	if *paper {
		opt = opt.Paper()
	}
	if *ops > 0 {
		opt.WhisperOps = *ops
		opt.MicroOps = *ops
	}
	opt.Seed = *seed
	opt.Workers = *workers
	if *snapDir != "" {
		// Persistent store: warmups (and horizon checkpoints) survive this
		// process, so a later pmobench against the same directory starts
		// from zero warmup re-simulations.
		opt.Snapshots, err = domainvirt.NewSnapshotCacheDir(*snapDir)
		if err != nil {
			return fail(err)
		}
	} else if *snapshot {
		// One cache across every experiment in this invocation: Table VI,
		// Table VII, and the 1024-PMO Fig. 6 column share warmups, and a
		// cost ablation re-simulates no warmup at all. Results are
		// bit-identical with or without it. Progress lines tag each cell
		// "(snapshot)" or "(warmup)" to show which path served it.
		opt.Snapshots = domainvirt.NewSnapshotCache()
	}
	if *sweepAddrs != "" {
		for _, a := range strings.Split(*sweepAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opt.SweepAddrs = append(opt.SweepAddrs, a)
			}
		}
		opt.SweepConns = *sweepConns
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fail(err)
		}
	}

	workersResolved := opt.Workers
	if workersResolved <= 0 {
		workersResolved = runtime.GOMAXPROCS(0)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "pmobench: experiment=%s whisper_ops=%d micro_ops=%d seed=%d workers=%d snapshot=%v pmo_counts=%v\n",
			*exp, opt.WhisperOps, opt.MicroOps, opt.Seed, workersResolved, *snapshot, opt.PMOCounts)
	}

	failed := false
	run := func(name string, fn func() error) {
		if failed || (*exp != "all" && *exp != name) {
			return
		}
		if *obsOut != "" {
			opt.Obs = domainvirt.ExpObs{
				Dir:   filepath.Join(*obsOut, name),
				Epoch: *obsEpoch,
			}
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "pmobench:", fmt.Errorf("%s: %w", name, err))
			failed = true
			return
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	var fig6Cache []domainvirt.Fig6Result
	fig6 := func() ([]domainvirt.Fig6Result, error) {
		if fig6Cache != nil {
			return fig6Cache, nil
		}
		var err error
		fig6Cache, err = domainvirt.Fig6(opt)
		return fig6Cache, err
	}

	run("table5", func() error {
		rows, err := domainvirt.Table5(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.Table5Report(rows), *csvDir, "table5")
	})

	run("table6", func() error {
		rows, err := domainvirt.Table6(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.Table6Report(rows), *csvDir, "table6")
	})

	run("fig6", func() error {
		frs, err := fig6()
		if err != nil {
			return err
		}
		for _, fr := range frs {
			s := domainvirt.Fig6Series(fr)
			if err := s.RenderChart(os.Stdout, 12); err != nil {
				return err
			}
			if err := emit(s.Table(), *csvDir, "fig6-"+fr.Benchmark); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig7", func() error {
		frs, err := fig6()
		if err != nil {
			return err
		}
		f7, err := domainvirt.Fig7(frs)
		if err != nil {
			return err
		}
		s := domainvirt.Fig7Series(f7)
		if err := s.RenderChart(os.Stdout, 12); err != nil {
			return err
		}
		if err := emit(s.Table(), *csvDir, "fig7"); err != nil {
			return err
		}
		for _, x := range f7.X {
			if sp, ok := f7.SpeedupAt[x]; ok && (x == 64 || x == 1024) {
				fmt.Printf("at %4d PMOs: HW MPK virtualization %.1fx faster than libmpk, domain virtualization %.1fx faster\n",
					x, sp[0], sp[1])
			}
		}
		fmt.Println()
		return nil
	})

	run("table7", func() error {
		mv, dv, err := domainvirt.Table7(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.Table7Report(mv, dv), *csvDir, "table7")
	})

	run("table8", func() error {
		return emit(domainvirt.Table8Report(opt.Cfg), *csvDir, "table8")
	})

	run("horizons", func() error {
		// Overheads at every ops horizon, forked from one mid-run pass per
		// scheme: the ladder shows how quickly the overhead estimate
		// converges as the measured window grows.
		p := domainvirt.Params{NumPMOs: 1024, Ops: opt.MicroOps, InitialElems: opt.MicroInit, Seed: opt.Seed}
		rows, err := domainvirt.HorizonSweep(opt, "avl", p, domainvirt.HorizonHorizonsFor(opt.MicroOps))
		if err != nil {
			return err
		}
		return emit(domainvirt.HorizonReport("avl", rows), *csvDir, "horizons-avl")
	})

	run("ablations", func() error {
		placement, err := domainvirt.AblationPlacement(opt)
		if err != nil {
			return err
		}
		if err := emit(domainvirt.AblationReport(
			"Ablation: node placement (AVL, % overhead over lowerbound)", placement),
			*csvDir, "ablation-placement"); err != nil {
			return err
		}
		sizes, err := domainvirt.AblationBufferSizes(opt)
		if err != nil {
			return err
		}
		if err := emit(domainvirt.AblationReport(
			"Ablation: DTTLB/PTLB entries (AVL, 1024 PMOs)", sizes),
			*csvDir, "ablation-buffers"); err != nil {
			return err
		}
		cores, err := domainvirt.AblationCores(opt)
		if err != nil {
			return err
		}
		if err := emit(domainvirt.AblationReport(
			"Ablation: cores participating in shootdowns (AVL, 256 PMOs)", cores),
			*csvDir, "ablation-cores"); err != nil {
			return err
		}
		costs, err := domainvirt.AblationCosts(opt)
		if err != nil {
			return err
		}
		return emit(domainvirt.AblationReport(
			"Ablation: cost-parameter sensitivity (AVL, 1024 PMOs)", costs),
			*csvDir, "ablation-costs")
	})

	if opt.Snapshots != nil {
		// Machine-readable summary for scripted runs: a primed persistent
		// store shows warmups=0 on a second invocation.
		st := opt.Snapshots.Stats()
		fmt.Fprintf(os.Stderr, "pmobench: snapshot cache: warmups=%d mem_hits=%d disk_hits=%d disk_rejects=%d\n",
			st.Warmups, st.MemHits, st.DiskHits, st.DiskRejects)
	}
	if failed {
		return 1
	}
	return 0
}

func emit(t *report.Table, csvDir, name string) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pmobench:", err)
	return 1
}
