package domainvirt_test

import (
	"bytes"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	"domainvirt"
)

func tinyExpOptions() domainvirt.ExpOptions {
	opt := domainvirt.DefaultExpOptions()
	opt.WhisperOps = 400
	opt.WhisperInit = 100
	opt.MicroOps = 300
	opt.MicroInit = 128
	opt.PMOCounts = []int{16, 64}
	return opt
}

func render(t *testing.T, tab interface {
	Render(w io.Writer) error
}) string {
	t.Helper()
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParallelMatchesSequential: every table/figure runner must produce
// identical rows AND byte-identical rendered reports whether its cells
// run inline (Workers=1) or on a 4-worker pool. Each cell builds its own
// machine, so this holds by construction; the test pins it.
func TestParallelMatchesSequential(t *testing.T) {
	seq := tinyExpOptions()
	seq.Workers = 1
	par := tinyExpOptions()
	par.Workers = 4

	t5s, err := domainvirt.Table5(seq)
	if err != nil {
		t.Fatal(err)
	}
	t5p, err := domainvirt.Table5(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t5s, t5p) {
		t.Errorf("Table5 rows differ between sequential and parallel runs:\n%v\n%v", t5s, t5p)
	}
	if a, b := render(t, domainvirt.Table5Report(t5s)), render(t, domainvirt.Table5Report(t5p)); a != b {
		t.Error("Table5 rendered report differs between sequential and parallel runs")
	}

	t6s, err := domainvirt.Table6(seq)
	if err != nil {
		t.Fatal(err)
	}
	t6p, err := domainvirt.Table6(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t6s, t6p) {
		t.Error("Table6 rows differ between sequential and parallel runs")
	}

	f6s, err := domainvirt.Fig6(seq)
	if err != nil {
		t.Fatal(err)
	}
	f6p, err := domainvirt.Fig6(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f6s, f6p) {
		t.Error("Fig6 sweeps differ between sequential and parallel runs")
	}

	mvS, dvS, err := domainvirt.Table7(seq)
	if err != nil {
		t.Fatal(err)
	}
	mvP, dvP, err := domainvirt.Table7(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mvS, mvP) || !reflect.DeepEqual(dvS, dvP) {
		t.Error("Table7 rows differ between sequential and parallel runs")
	}
	if a, b := render(t, domainvirt.Table7Report(mvS, dvS)), render(t, domainvirt.Table7Report(mvP, dvP)); a != b {
		t.Error("Table7 rendered report differs between sequential and parallel runs")
	}
}

// TestParallelWorkerSweep: the worker count must never change results,
// whatever its value (0 = GOMAXPROCS, over-provisioned, etc).
func TestParallelWorkerSweep(t *testing.T) {
	var want []domainvirt.Table6Row
	for _, workers := range []int{1, 0, 2, 3, 8, 64} {
		opt := tinyExpOptions()
		opt.Workers = workers
		rows, err := domainvirt.Table6(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Errorf("workers=%d: rows differ from workers=1", workers)
		}
	}
}

// TestTable5ParallelSpeedup: on a machine with enough cores, the
// parallel Table V run must be at least 2x faster than the sequential
// one. Skipped on small machines where the pool degenerates.
func TestTable5ParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	opt := tinyExpOptions()
	opt.WhisperOps = 20000
	opt.WhisperInit = 2000

	opt.Workers = 1
	start := time.Now()
	if _, err := domainvirt.Table5(opt); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(start)

	opt.Workers = runtime.NumCPU()
	start = time.Now()
	if _, err := domainvirt.Table5(opt); err != nil {
		t.Fatal(err)
	}
	par := time.Since(start)

	t.Logf("Table5 sequential %v, parallel (%d workers) %v, speedup %.2fx",
		seq, opt.Workers, par, float64(seq)/float64(par))
	if float64(seq)/float64(par) < 2 {
		t.Errorf("parallel Table5 speedup %.2fx, want >= 2x on %d CPUs",
			float64(seq)/float64(par), runtime.NumCPU())
	}
}

// TestFig7EmptyError: an empty Figure 6 sweep must be reported as an
// error instead of silently averaging to a zero result.
func TestFig7EmptyError(t *testing.T) {
	if _, err := domainvirt.Fig7(nil); err == nil {
		t.Error("Fig7(nil) succeeded; want explicit error")
	}
	if _, err := domainvirt.Fig7([]domainvirt.Fig6Result{}); err == nil {
		t.Error("Fig7(empty) succeeded; want explicit error")
	}

	opt := tinyExpOptions()
	opt.PMOCounts = []int{16}
	f6, err := domainvirt.Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := domainvirt.Fig7(f6)
	if err != nil {
		t.Fatalf("Fig7 on a valid sweep: %v", err)
	}
	if len(f7.X) != 1 || f7.X[0] != 16 {
		t.Errorf("Fig7 X = %v, want [16]", f7.X)
	}
}
