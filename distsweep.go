package domainvirt

import (
	"bytes"
	"encoding/json"
	"fmt"

	"domainvirt/internal/obs"
	"domainvirt/internal/sweep"
)

// Distributed sweep: the coordinator (runGrid with ExpOptions.SweepAddrs
// set) encodes each grid cell into a self-contained spec, fans the specs
// out to pmoworker daemons through internal/sweep, and decodes the
// returned payloads into exactly the values the local path would have
// produced — Result, warmup-hit flag, and the cell's observability
// artifacts as rendered bytes. Because the merge happens in fixed grid
// order from per-cell artifacts, every table, CSV, manifest, series, and
// histogram file is byte-identical to a sequential local run.

// sweepCellSpec is the coordinator->worker description of one cell. All
// fields are exported value types, so the JSON round-trip is exact.
type sweepCellSpec struct {
	Name     string `json:"name"`
	Params   Params `json:"params"`
	Scheme   Scheme `json:"scheme"`
	Cfg      Config `json:"cfg"`
	Observed bool   `json:"observed"`
	Epoch    uint64 `json:"epoch"`
	// SnapKey is the content address of the cell's warmup checkpoint;
	// a worker missing it in its own store pulls it from the
	// coordinator before simulating (or rebuilds it on a miss).
	SnapKey string `json:"snap_key"`
}

// sweepCellResult is the worker->coordinator payload for one finished
// cell. Manifest and Series carry the exact bytes the worker's recorder
// rendered; histograms merge commutatively on the coordinator.
type sweepCellResult struct {
	Result   Result        `json:"result"`
	Hit      bool          `json:"hit"`
	Manifest []byte        `json:"manifest,omitempty"`
	Series   []byte        `json:"series,omitempty"`
	Access   obs.Histogram `json:"access"`
	SetPerm  obs.Histogram `json:"setperm"`
}

// encodeSweepCell renders one grid cell as a wire job.
func encodeSweepCell(c expCell, opt ExpOptions) (sweep.Job, error) {
	spec := sweepCellSpec{
		Name:     c.name,
		Params:   c.p,
		Scheme:   c.scheme,
		Cfg:      opt.Cfg,
		Observed: opt.Obs.Dir != "",
		Epoch:    opt.Obs.Epoch,
		SnapKey:  SnapshotKeyFor(c.name, c.p, c.scheme, opt.Cfg),
	}
	b, err := json.Marshal(spec)
	if err != nil {
		return sweep.Job{}, err
	}
	return sweep.Job{Spec: b, SnapKeys: []string{spec.SnapKey}}, nil
}

// RunSweepCell executes one encoded sweep cell in this process — the
// worker half of the distributed grid, also used by the coordinator's
// local fallback for cells lost to a dead worker. When the local cache
// is persistent and the cell's warmup snapshot is absent, fetch (if
// non-nil) pulls it from the coordinator into the local store first, so
// a fresh worker never re-simulates a warmup the coordinator already
// holds.
func RunSweepCell(spec []byte, cache *SnapshotCache, fetch sweep.Fetch) ([]byte, error) {
	var cs sweepCellSpec
	if err := json.Unmarshal(spec, &cs); err != nil {
		return nil, fmt.Errorf("domainvirt: bad sweep cell spec: %w", err)
	}
	if cache != nil && cache.Persistent() && fetch != nil &&
		cs.SnapKey != "" && !cache.HasStored(cs.SnapKey) {
		if data, ok := fetch(cs.SnapKey); ok {
			// Best-effort install; a corrupt transfer is caught by the
			// load-time decode+probe validation and rebuilt.
			_ = cache.PutEncoded(cs.SnapKey, data)
		}
	}
	var out sweepCellResult
	if cs.Observed {
		res, rec, hit, err := RunObservedCached(cs.Name, cs.Params, cs.Scheme, cs.Cfg,
			ObsOptions{Epoch: cs.Epoch}, cache)
		if err != nil {
			return nil, err
		}
		out.Result, out.Hit = res, hit
		var man bytes.Buffer
		if err := rec.Manifest().WriteJSON(&man); err != nil {
			return nil, err
		}
		out.Manifest = man.Bytes()
		if cs.Epoch > 0 {
			var series bytes.Buffer
			if err := rec.WriteJSONL(&series); err != nil {
				return nil, err
			}
			out.Series = series.Bytes()
		}
		out.Access = *rec.AccessHist()
		out.SetPerm = *rec.SetPermHist()
	} else {
		res, hit, err := RunCached(cs.Name, cs.Params, cs.Scheme, cs.Cfg, cache)
		if err != nil {
			return nil, err
		}
		out.Result, out.Hit = res, hit
	}
	return json.Marshal(out)
}

// runGridRemote fans uniq out to the worker pool and reassembles the
// same results/artifacts runGrid's local path produces. A pool with no
// live workers (every dial failed) runs everything through the local
// fallback — the degenerate case is the sequential path.
func runGridRemote(opt ExpOptions, uniq []expCell) ([]Result, []cellObs, error) {
	logf := func(format string, args ...any) {
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, format+"\n", args...)
		}
	}
	conns := opt.SweepConns
	if conns <= 0 {
		conns = 1
	}
	pool := sweep.NewPool(opt.SweepAddrs, conns, logf)
	defer pool.Close()
	logf("sweep: %d worker connection(s) across %d address(es)", pool.Workers(), len(opt.SweepAddrs))

	jobs := make([]sweep.Job, len(uniq))
	for i, c := range uniq {
		job, err := encodeSweepCell(c, opt)
		if err != nil {
			return nil, nil, err
		}
		jobs[i] = job
	}
	local := func(i int) ([]byte, error) {
		return RunSweepCell(jobs[i].Spec, opt.Snapshots, nil)
	}
	lookup := func(key string) ([]byte, bool) {
		if opt.Snapshots == nil {
			return nil, false
		}
		data, err := opt.Snapshots.GetEncoded(key)
		return data, err == nil
	}
	prog := obs.NewProgress(opt.Progress, len(uniq))
	payloads, err := pool.Run(jobs, local, lookup)
	if err != nil {
		return nil, nil, err
	}
	results := make([]Result, len(uniq))
	artifacts := make([]cellObs, len(uniq))
	for i, payload := range payloads {
		var r sweepCellResult
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil, nil, fmt.Errorf("domainvirt: bad sweep cell payload for %s: %w", uniq[i].label(), err)
		}
		results[i] = r.Result
		if r.Manifest != nil {
			artifacts[i] = cellObs{
				ok:       true,
				manifest: r.Manifest,
				series:   r.Series,
				access:   r.Access,
				setperm:  r.SetPerm,
			}
		}
		label := uniq[i].label()
		if opt.Snapshots != nil || len(opt.SweepAddrs) > 0 {
			if r.Hit {
				label += " (snapshot)"
			} else {
				label += " (warmup)"
			}
		}
		prog.Done(label)
	}
	return results, artifacts, nil
}
