package domainvirt_test

import (
	"testing"

	"domainvirt"
	"domainvirt/internal/core"
	"domainvirt/internal/pmo"
)

// The security tests act out the paper's threat model end to end: a
// server process holds per-client PMOs; a compromised thread (the
// Heartbleed scenario of Section III) tries to read or write another
// client's data through plain loads/stores and through SETPERM gadget
// reuse.

func setupVictim(t *testing.T, scheme domainvirt.Scheme) (*domainvirt.Machine, *pmo.Space, *pmo.Pool, *pmo.Pool) {
	t.Helper()
	m := domainvirt.NewMachine(domainvirt.DefaultConfig(), scheme)
	store := domainvirt.NewStore()
	space := domainvirt.NewSpace(m)

	alice, err := store.Create("client-alice", 8<<20, domainvirt.ModeDefault, "server")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := store.Create("client-bob", 8<<20, domainvirt.ModeDefault, "server")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*pmo.Pool{alice, bob} {
		if _, err := space.Attach(p, domainvirt.PermRW, ""); err != nil {
			t.Fatal(err)
		}
	}
	return m, space, alice, bob
}

func schemesUnderTest() []domainvirt.Scheme {
	return []domainvirt.Scheme{
		domainvirt.SchemeMPK, domainvirt.SchemeLibmpk,
		domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt,
	}
}

// TestSpatialIsolationEndToEnd: thread 1 (handling alice) can use
// alice's PMO; thread 2 (compromised, handling bob) is denied alice's
// data both for reads (disclosure) and writes (corruption).
func TestSpatialIsolationEndToEnd(t *testing.T) {
	for _, scheme := range schemesUnderTest() {
		m, space, alice, _ := setupVictim(t, scheme)

		space.Thread = 1
		if err := space.SetPerm(alice, domainvirt.PermRW, 1); err != nil {
			t.Fatal(err)
		}
		secret, err := alice.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		alice.WriteU64(secret.Offset(), 0x5EC12E7)
		if n := len(m.Faults()); n != 0 {
			t.Fatalf("%s: owner faulted: %v", scheme, m.Faults())
		}

		// Compromised thread 2 reads and writes alice's secret.
		space.Thread = 2
		alice.ReadU64(secret.Offset())
		alice.WriteU64(secret.Offset(), 0xBAD)
		res := m.Result()
		if res.Counters.DomainFaults != 2 {
			t.Errorf("%s: spatial attack raised %d faults, want 2", scheme, res.Counters.DomainFaults)
		}
	}
}

// TestTemporalIsolationEndToEnd: the same thread loses access once its
// permission window closes — the paper's Figure 2(a).
func TestTemporalIsolationEndToEnd(t *testing.T) {
	for _, scheme := range schemesUnderTest() {
		m, space, alice, _ := setupVictim(t, scheme)
		space.Thread = 1

		if err := space.SetPerm(alice, domainvirt.PermRW, 1); err != nil {
			t.Fatal(err)
		}
		buf, err := alice.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		alice.WriteU64(buf.Offset(), 1) // inside the window: fine

		if err := space.SetPerm(alice, domainvirt.PermR, 1); err != nil {
			t.Fatal(err)
		}
		alice.ReadU64(buf.Offset())     // reads still allowed
		alice.WriteU64(buf.Offset(), 2) // writes now denied
		if got := m.Result().Counters.DomainFaults; got != 1 {
			t.Errorf("%s: after -W, faults = %d, want 1", scheme, got)
		}

		if err := space.SetPerm(alice, domainvirt.PermNone, 1); err != nil {
			t.Fatal(err)
		}
		alice.ReadU64(buf.Offset()) // even reads denied
		if got := m.Result().Counters.DomainFaults; got != 2 {
			t.Errorf("%s: after -R, faults = %d, want 2", scheme, got)
		}
	}
}

// TestGadgetReuseBlocked: an attacker who cannot inject code tries to
// reuse a SETPERM instruction from an unvetted site; the ERIM-style
// binary inspection gate blocks it, so the subsequent access still
// faults.
func TestGadgetReuseBlocked(t *testing.T) {
	m, space, alice, _ := setupVictim(t, domainvirt.SchemeDomainVirt)
	insp := domainvirt.NewInspector()
	insp.Approve(1, "vetted server gate")
	m.SetInspector(insp)

	space.Thread = 2
	// The gadget: a SETPERM from site 666 granting thread 2 access.
	if err := space.SetPerm(alice, domainvirt.PermRW, 666); err != nil {
		t.Fatal(err)
	}
	alice.ReadU64(4096)
	res := m.Result()
	if len(insp.Violations()) != 1 {
		t.Fatalf("gadget SETPERM not flagged: %v", insp.Violations())
	}
	if res.Counters.DomainFaults < 2 { // the blocked SETPERM + the denied read
		t.Errorf("gadget attack succeeded: %+v", res.Counters)
	}

	// The vetted site still works for the legitimate thread.
	space.Thread = 1
	if err := space.SetPerm(alice, domainvirt.PermR, 1); err != nil {
		t.Fatal(err)
	}
	before := m.Result().Counters.DomainFaults
	alice.ReadU64(4096)
	if got := m.Result().Counters.DomainFaults; got != before {
		t.Error("vetted SETPERM failed to grant access")
	}
}

// TestPagePermStricterThanDomain: a read-only attach caps even a thread
// holding RW domain permission — "the more restrictive permission is
// derived".
func TestPagePermStricterThanDomain(t *testing.T) {
	m := domainvirt.NewMachine(domainvirt.DefaultConfig(), domainvirt.SchemeDomainVirt)
	store := domainvirt.NewStore()
	space := domainvirt.NewSpace(m)
	p, err := store.Create("ro", 8<<20, domainvirt.ModeDefault, "server")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := space.Attach(p, domainvirt.PermR, ""); err != nil { // read-only pages
		t.Fatal(err)
	}
	if err := space.SetPerm(p, domainvirt.PermRW, 1); err != nil { // domain says RW
		t.Fatal(err)
	}
	p.ReadU64(4096)
	if got := m.Result().Counters.PageFaults + m.Result().Counters.DomainFaults; got != 0 {
		t.Fatalf("read faulted: %d", got)
	}
	p.WriteU64(4096, 1)
	if got := m.Result().Counters.PageFaults; got != 1 {
		t.Errorf("write through read-only pages not page-faulted (%d)", got)
	}
}

// TestDetachedPMOInaccessible: detaching is the coarse temporal defense —
// afterwards the VA range is no longer a domain, but the pages are gone
// too (unmapped in a real system); here the domain fault manifests as the
// access falling outside any attached pool region.
func TestDetachRemovesDomain(t *testing.T) {
	m, space, alice, _ := setupVictim(t, domainvirt.SchemeDomainVirt)
	space.Thread = 1
	if err := space.SetPerm(alice, domainvirt.PermRW, 1); err != nil {
		t.Fatal(err)
	}
	alice.WriteU64(4096, 7)
	if err := space.Detach(alice); err != nil {
		t.Fatal(err)
	}
	if m.Engine().DomainOf(0x2000_0000_0000) != core.NullDomain &&
		m.Engine().DomainOf(0x2000_0000_0000) != 0 {
		t.Log("note: region reuse after detach")
	}
	if alice.Attached() {
		t.Error("pool still attached")
	}
	// Reattach under a read-only intent: previous RW grant must not
	// resurrect (fresh PT/DTT state for the domain).
	if _, err := space.Attach(alice, domainvirt.PermR, ""); err != nil {
		t.Fatal(err)
	}
	alice.ReadU64(4096)
	if got := m.Result().Counters.DomainFaults; got == 0 {
		t.Error("stale permission survived detach/reattach")
	}
}
