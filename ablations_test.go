package domainvirt_test

import (
	"bytes"
	"testing"

	"domainvirt"
)

func tinyOpts() domainvirt.ExpOptions {
	opt := domainvirt.DefaultExpOptions()
	opt.MicroOps = 400
	opt.MicroInit = 256
	return opt
}

func TestAblationPlacement(t *testing.T) {
	rows, err := domainvirt.AblationPlacement(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]domainvirt.AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Per-pool placement touches ~1 domain per op, so the hardware
	// schemes' overheads must be far below scattered placement at 1024
	// PMOs.
	sc := byLabel["scatter/1024 PMOs"]
	pp := byLabel["perpool/1024 PMOs"]
	if pp.MPKVirtPct >= sc.MPKVirtPct {
		t.Errorf("perpool mpkvirt %.1f%% not below scatter %.1f%%", pp.MPKVirtPct, sc.MPKVirtPct)
	}
	if pp.LibmpkPct >= sc.LibmpkPct {
		t.Errorf("perpool libmpk %.1f%% not below scatter %.1f%%", pp.LibmpkPct, sc.LibmpkPct)
	}
	// Ordering holds under both placements at 1024 PMOs.
	for _, r := range []domainvirt.AblationRow{sc, pp} {
		if !(r.LibmpkPct > r.MPKVirtPct && r.MPKVirtPct > r.DomVirtPct) {
			t.Errorf("%s: ordering violated (%.1f, %.1f, %.1f)", r.Label, r.LibmpkPct, r.MPKVirtPct, r.DomVirtPct)
		}
	}
	var b bytes.Buffer
	if err := domainvirt.AblationReport("placement", rows).Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestAblationBufferSizes(t *testing.T) {
	rows, err := domainvirt.AblationBufferSizes(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger PTLBs can only help domain virtualization (fewer misses).
	if rows[3].DomVirtPct > rows[0].DomVirtPct+0.5 {
		t.Errorf("64-entry PTLB (%.2f%%) worse than 8-entry (%.2f%%)",
			rows[3].DomVirtPct, rows[0].DomVirtPct)
	}
}

func TestAblationCores(t *testing.T) {
	rows, err := domainvirt.AblationCores(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shootdowns broadcast to every core: MPK virtualization's overhead
	// must grow with the core count; domain virtualization has no
	// shootdowns, so it must grow far less.
	mvGrowth := rows[2].MPKVirtPct / rows[0].MPKVirtPct
	dvGrowth := rows[2].DomVirtPct / rows[0].DomVirtPct
	if mvGrowth < 1.2 {
		t.Errorf("mpkvirt overhead did not grow with cores: %.2fx", mvGrowth)
	}
	if dvGrowth > mvGrowth {
		t.Errorf("domainvirt grew faster (%.2fx) than mpkvirt (%.2fx) with cores", dvGrowth, mvGrowth)
	}
}

func TestAblationCosts(t *testing.T) {
	rows, err := domainvirt.AblationCosts(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Doubling the invalidation cost must raise MPK virtualization's
	// overhead and leave domain virtualization (no shootdowns) alone.
	if rows[2].MPKVirtPct <= rows[0].MPKVirtPct {
		t.Errorf("mpkvirt insensitive to invalidation cost: %.1f vs %.1f",
			rows[0].MPKVirtPct, rows[2].MPKVirtPct)
	}
	if diff := rows[2].DomVirtPct - rows[0].DomVirtPct; diff > 1 || diff < -1 {
		t.Errorf("domainvirt moved with invalidation cost: %.2f", diff)
	}
	// Slower NVM inflates the baseline: every relative overhead shrinks.
	if rows[5].MPKVirtPct >= rows[3].MPKVirtPct {
		t.Errorf("slower NVM did not dilute overhead: %.1f vs %.1f",
			rows[3].MPKVirtPct, rows[5].MPKVirtPct)
	}
}
