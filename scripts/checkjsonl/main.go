// Command checkjsonl validates JSONL files: every line must parse as a
// standalone JSON object. CI uses it to smoke-check the observability
// exports written by pmosim -obs-out.
//
// Usage:
//
//	checkjsonl [-min-lines N] file.jsonl...
//
// Exits nonzero on the first malformed line or on a file with fewer
// than -min-lines lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	minLines := flag.Int("min-lines", 1, "fail files with fewer than this many lines")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "checkjsonl: no files given")
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		n, err := check(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkjsonl: %s: %v\n", path, err)
			ok = false
			continue
		}
		if n < *minLines {
			fmt.Fprintf(os.Stderr, "checkjsonl: %s: %d lines, want at least %d\n", path, n, *minLines)
			ok = false
			continue
		}
		fmt.Printf("%s: %d valid JSONL lines\n", path, n)
	}
	if !ok {
		os.Exit(1)
	}
}

func check(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		var obj map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return n, fmt.Errorf("line %d: %w", n, err)
		}
		if len(obj) == 0 {
			return n, fmt.Errorf("line %d: empty object", n)
		}
	}
	return n, sc.Err()
}
