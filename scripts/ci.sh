#!/usr/bin/env bash
# ci.sh — the full local gate: vet, build, and the race-enabled test
# suite (which includes the 1,000-program differential conformance
# campaign in internal/conformance), followed by the observability
# gates: the byte-determinism tests and a pmosim -obs-out smoke run
# whose JSONL export must parse. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go vet ./internal/obs/
go build ./...
go test -race ./...

# Observability determinism contract, run explicitly so a regression
# names the broken contract rather than hiding in the package list.
go test -race -run 'TestObsDeterminism|TestObsRecorderDoesNotPerturb|TestObsSamplerDisabled' .
go test -race -run 'TestHistogramMergeProperty|TestExportersDeterministic' ./internal/obs/

# Smoke: an observed run must write a parseable, nonempty epoch series.
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/pmosim -workload avl -scheme mpkvirt -pmos 64 -ops 5000 \
    -obs-out "$obsdir" -obs-epoch 10000 >/dev/null
go run ./scripts/checkjsonl -min-lines 2 "$obsdir"/avl-mpkvirt-series.jsonl
