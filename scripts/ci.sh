#!/usr/bin/env bash
# ci.sh — the full local gate: vet, build, and the race-enabled test
# suite (which includes the 1,000-program differential conformance
# campaign in internal/conformance). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
