#!/usr/bin/env bash
# ci.sh — the full local gate: vet, build, and the race-enabled test
# suite (which includes the 1,000-program differential conformance
# campaign in internal/conformance), followed by the observability
# gates: the byte-determinism tests, a pmosim -obs-out smoke run whose
# JSONL export must parse, the request-tracing contract (disabled path
# allocation-free, tracer and capture tee perturbation-free), a traced
# pmod+pmoload smoke whose span dump, Prometheus snapshot, and traffic
# capture must validate and replay, a cluster smoke (three pmod nodes
# behind pmorouter surviving a mid-load node kill with zero errors and
# zero isolation violations), the deterministic-replay grid gates (the
# same grid sequential vs. parallel, vs. two fresh processes sharing a
# persistent -snapshot-dir with zero warm-run warmups, vs. a
# distributed sweep over two pmoworkers with one SIGKILLed mid-run —
# all byte-identical), and the RESULTS.md drift check.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go vet ./internal/obs/
go build ./...
# -timeout raised above the Go default: the full race-enabled suite is
# ~10 minutes of real simulation on a single-CPU container.
go test -race -timeout 30m ./...

# Observability determinism contract, run explicitly so a regression
# names the broken contract rather than hiding in the package list.
go test -race -run 'TestObsDeterminism|TestObsRecorderDoesNotPerturb|TestObsSamplerDisabled' .
go test -race -run 'TestHistogramMergeProperty|TestExportersDeterministic' ./internal/obs/

# Service layer: the concurrency-hardened PMO library, the daemon, and
# the cluster router, run explicitly so a race regression names the
# layer that broke.
go test -race ./internal/serve/... ./internal/pmo/... ./internal/cluster/...

# Crash-consistency gate: the persistence fault model, the transaction
# layer (including the checked-in FuzzRecover seed corpus, which runs as
# regression cases under plain `go test`), and the kill-at-every-step
# conformance suite, race-enabled; then a bounded generated sweep via
# the CLI entry point and a short live fuzz of log-recovery.
go test -race ./internal/persist/ ./internal/txn/ ./internal/crashconform/
go run ./cmd/pmosim -crashconform -crashconform-workloads 40
go test -fuzz FuzzRecover -fuzztime 5s -run '^$' ./internal/txn/

# Hot-path budget smoke: run every benchmark briefly and enforce the
# allocation budgets of BENCH_sim.json (allocs/op must not grow; the
# timing gate is disabled here because a short CI run is too noisy —
# scripts/bench.sh check is the full timing gate).
go test -run '^$' -bench . -benchmem -benchtime 200x \
    ./internal/sim/ ./internal/tlb/ ./internal/serve/ ./internal/cluster/ \
    | go run ./cmd/benchjson -check BENCH_sim.json -ns-tolerance -1

# Smoke: an observed run must write a parseable, nonempty epoch series.
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/pmosim -workload avl -scheme mpkvirt -pmos 64 -ops 5000 \
    -obs-out "$obsdir" -obs-epoch 10000 >/dev/null
go run ./scripts/checkjsonl -min-lines 2 "$obsdir"/avl-mpkvirt-series.jsonl

# Request-tracing contract, run explicitly: the disabled path must stay
# allocation-free and neither the tracer nor the capture tee may perturb
# the simulated engine totals.
go test -race -run 'TestDisabledPathAllocFree|TestJSONLDeterministicRoundTrip' ./internal/reqtrace/
go test -race -run 'TestTracingZeroPerturbation|TestCaptureZeroPerturbation|TestCaptureRoundTripConformance|TestMetricsExpositionValidUnderLoad' ./internal/serve/

# Smoke: a live pmod daemon under 50 closed-loop clients for 2 seconds
# must serve with zero protocol errors and zero isolation violations
# (pmoload exits nonzero otherwise) while tracing every request and
# recording live traffic through the shard tee, then drain cleanly on
# SIGTERM. The drained artifacts feed the experiment pipeline: the span
# dump must be valid JSONL, the Prometheus snapshot must lint clean, and
# the capture must audit and replay under two schemes.
go build -o "$obsdir/pmod" ./cmd/pmod
go build -o "$obsdir/pmoload" ./cmd/pmoload
go build -o "$obsdir/pmotrace" ./cmd/pmotrace
"$obsdir/pmod" -listen 127.0.0.1:0 -addr-file "$obsdir/pmod.addr" \
    -engine domainvirt -store "$obsdir/pmostore" \
    -trace-sample 16 -trace-slow 10ms -trace-spans "$obsdir/spans.jsonl" \
    -trace-out "$obsdir/capture" -metrics 127.0.0.1:0 &
pmod_pid=$!
for _ in $(seq 50); do
    [ -s "$obsdir/pmod.addr" ] && break
    sleep 0.1
done
[ -s "$obsdir/pmod.addr" ] || { echo "pmod never bound" >&2; exit 1; }
"$obsdir/pmoload" -addr-file "$obsdir/pmod.addr" -clients 50 -duration 2s -trace
kill -TERM "$pmod_pid"
wait "$pmod_pid"
go run ./scripts/checkjsonl -min-lines 10 "$obsdir/spans.jsonl"
"$obsdir/pmotrace" audit -i "$obsdir/capture"
"$obsdir/pmotrace" replay -i "$obsdir/capture" -scheme domainvirt -obs-out "$obsdir/capture-obs"
"$obsdir/pmotrace" replay -i "$obsdir/capture" -scheme mpkvirt
go run ./scripts/checkprom "$obsdir/capture-obs"/capture-domainvirt-metrics.prom

# Cluster smoke: three pmod nodes behind a pmorouter, cluster-shaped
# load (shared Zipf-skewed pools, session churn, batch pipelining,
# per-node attribution), SIGTERM one node mid-run. pmoload exits
# nonzero on any protocol error or isolation violation, so the gate
# asserts the outage surfaced only as typed, tolerated UNAVAILABLE
# answers; every daemon and the router must then drain cleanly.
go build -o "$obsdir/pmorouter" ./cmd/pmorouter
node_pids=()
for i in 1 2 3; do
    "$obsdir/pmod" -listen 127.0.0.1:0 -addr-file "$obsdir/node$i.addr" \
        -engine domainvirt -store "$obsdir/nodestore$i" &
    node_pids+=($!)
done
for _ in $(seq 50); do
    [ -s "$obsdir/node1.addr" ] && [ -s "$obsdir/node2.addr" ] && [ -s "$obsdir/node3.addr" ] && break
    sleep 0.1
done
nodes="$(cat "$obsdir/node1.addr"),$(cat "$obsdir/node2.addr"),$(cat "$obsdir/node3.addr")"
"$obsdir/pmorouter" -listen 127.0.0.1:0 -addr-file "$obsdir/router.addr" \
    -backends "$nodes" -health-every 100ms -fail-after 2 &
router_pid=$!
for _ in $(seq 50); do
    [ -s "$obsdir/router.addr" ] && break
    sleep 0.1
done
[ -s "$obsdir/router.addr" ] || { echo "pmorouter never bound" >&2; exit 1; }
"$obsdir/pmoload" -addr-file "$obsdir/router.addr" -clients 24 -duration 3s \
    -pools 60 -zipf 1.2 -churn 0.02 -batch 8 -poolsize $((512 * 1024)) \
    -nodes "$nodes" -tolerate-unavailable &
load_pid=$!
sleep 1
kill -TERM "${node_pids[1]}"   # one owner goes away mid-load
wait "$load_pid"               # nonzero on errors/violations fails the gate
kill -TERM "$router_pid"
wait "$router_pid"
kill -TERM "${node_pids[0]}" "${node_pids[2]}"
for pid in "${node_pids[@]}"; do
    wait "$pid"
done

# Deterministic parallel replay gate: the same Table 5 grid run twice —
# once sequentially with snapshot reuse off, once on 8 workers with
# warmup snapshot sharing — must export byte-identical CSV tables,
# per-cell manifests, epoch series, and per-scheme histograms. Any
# scheduling, merge-order, or snapshot-fidelity bug shows up as a diff.
go build -o "$obsdir/pmobench" ./cmd/pmobench
"$obsdir/pmobench" -experiment table5 -ops 2000 -quiet \
    -workers 1 -snapshot=false \
    -csv "$obsdir/gridseq" -obs-out "$obsdir/gridseq-obs" -obs-epoch 20000 >/dev/null
"$obsdir/pmobench" -experiment table5 -ops 2000 -quiet \
    -workers 8 -snapshot \
    -csv "$obsdir/gridpar" -obs-out "$obsdir/gridpar-obs" -obs-epoch 20000 >/dev/null
diff -r "$obsdir/gridseq" "$obsdir/gridpar" \
    || { echo "parallel+snapshot grid CSV diverged from sequential" >&2; exit 1; }
diff -r "$obsdir/gridseq-obs" "$obsdir/gridpar-obs" \
    || { echo "parallel+snapshot grid obs exports diverged from sequential" >&2; exit 1; }

# Persistent snapshot store gate: the same grid run by two FRESH
# processes sharing one -snapshot-dir. The first populates the store;
# the second must report zero warmup re-simulations on its cache-stats
# stderr line and still match the sequential run byte-for-byte.
"$obsdir/pmobench" -experiment table5 -ops 2000 -quiet \
    -snapshot-dir "$obsdir/snapstore" \
    -csv "$obsdir/gridcold" -obs-out "$obsdir/gridcold-obs" -obs-epoch 20000 >/dev/null
"$obsdir/pmobench" -experiment table5 -ops 2000 -quiet \
    -snapshot-dir "$obsdir/snapstore" \
    -csv "$obsdir/gridwarm" -obs-out "$obsdir/gridwarm-obs" -obs-epoch 20000 \
    >/dev/null 2>"$obsdir/gridwarm.err"
grep -q 'snapshot cache: warmups=0 ' "$obsdir/gridwarm.err" \
    || { echo "primed snapshot store still re-simulated warmups:" >&2; \
         cat "$obsdir/gridwarm.err" >&2; exit 1; }
diff -r "$obsdir/gridseq" "$obsdir/gridcold" && diff -r "$obsdir/gridseq" "$obsdir/gridwarm" \
    || { echo "persistent-store grid CSV diverged from sequential" >&2; exit 1; }
diff -r "$obsdir/gridseq-obs" "$obsdir/gridcold-obs" && diff -r "$obsdir/gridseq-obs" "$obsdir/gridwarm-obs" \
    || { echo "persistent-store grid obs exports diverged from sequential" >&2; exit 1; }

# Distributed sweep smoke: the grid fanned out to two pmoworker
# daemons, one of which is SIGKILLed mid-sweep. The coordinator must
# degrade the lost worker's cells to local re-execution and still
# export byte-identical tables and obs artifacts.
go build -o "$obsdir/pmoworker" ./cmd/pmoworker
"$obsdir/pmoworker" -listen 127.0.0.1:0 -addr-file "$obsdir/w1.addr" 2>"$obsdir/w1.log" &
w1_pid=$!
"$obsdir/pmoworker" -listen 127.0.0.1:0 -addr-file "$obsdir/w2.addr" -quiet 2>/dev/null &
w2_pid=$!
for _ in $(seq 50); do
    [ -s "$obsdir/w1.addr" ] && [ -s "$obsdir/w2.addr" ] && break
    sleep 0.1
done
[ -s "$obsdir/w1.addr" ] && [ -s "$obsdir/w2.addr" ] \
    || { echo "pmoworker never bound" >&2; exit 1; }
# Worker 1 is SIGKILLed right after it finishes its first cell, so the
# death lands while the sweep is in flight.
( for _ in $(seq 200); do
      grep -q 'cell .* done' "$obsdir/w1.log" 2>/dev/null && break
      sleep 0.05
  done
  kill -9 "$w1_pid" 2>/dev/null ) &
killer_pid=$!
"$obsdir/pmobench" -experiment table5 -ops 2000 -quiet \
    -sweep-addrs "$(cat "$obsdir/w1.addr"),$(cat "$obsdir/w2.addr")" -sweep-conns 2 \
    -csv "$obsdir/griddist" -obs-out "$obsdir/griddist-obs" -obs-epoch 20000 >/dev/null
wait "$killer_pid" || true
kill -9 "$w1_pid" 2>/dev/null || true
kill -9 "$w2_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
wait "$w2_pid" 2>/dev/null || true
diff -r "$obsdir/gridseq" "$obsdir/griddist" \
    || { echo "distributed grid CSV diverged from sequential" >&2; exit 1; }
diff -r "$obsdir/gridseq-obs" "$obsdir/griddist-obs" \
    || { echo "distributed grid obs exports diverged from sequential" >&2; exit 1; }

# The STATS snapshot of a traced daemon must be valid exposition format
# (validated above under load by TestMetricsExpositionValidUnderLoad;
# here the standalone linter gates the pmosim export too).
go run ./scripts/checkprom "$obsdir"/avl-mpkvirt-metrics.prom

# RESULTS.md is generated from the benchmark baseline; CI fails if it
# drifted from BENCH_sim.json.
go run ./cmd/benchjson -render BENCH_sim.json -md "$obsdir/RESULTS.md" >/dev/null
diff -u RESULTS.md "$obsdir/RESULTS.md" \
    || { echo "RESULTS.md is stale: run scripts/bench.sh render" >&2; exit 1; }
echo "ci.sh: all gates passed"
