// Command checkprom validates Prometheus text-exposition files with the
// obs layer's linter: HELP/TYPE once per family and before its samples,
// contiguous families, consistent label ordering, finite non-negative
// counter/histogram values, and structurally sound histogram series
// (increasing le, +Inf bucket, _count == +Inf). CI uses it to gate the
// pmod STATS snapshot and pmotrace's per-scheme .prom exports.
//
// Usage:
//
//	checkprom [-min-samples N] file.prom...
//
// Exits nonzero on any lint finding or on a file with fewer than
// -min-samples sample lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"domainvirt/internal/obs"
)

func main() {
	minSamples := flag.Int("min-samples", 1, "fail files with fewer than this many sample lines")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "checkprom: no files given")
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		findings, samples, err := check(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkprom: %s: %v\n", path, err)
			ok = false
			continue
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "checkprom: %s: %s\n", path, f)
		}
		if len(findings) > 0 {
			ok = false
			continue
		}
		if samples < *minSamples {
			fmt.Fprintf(os.Stderr, "checkprom: %s: %d samples, want at least %d\n", path, samples, *minSamples)
			ok = false
			continue
		}
		fmt.Printf("%s: %d valid samples\n", path, samples)
	}
	if !ok {
		os.Exit(1)
	}
}

func check(path string) ([]string, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	findings := obs.LintProm(f)
	if _, err := f.Seek(0, 0); err != nil {
		return findings, 0, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	samples := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	return findings, samples, sc.Err()
}
