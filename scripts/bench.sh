#!/usr/bin/env bash
# bench.sh — regenerate or gate the checked-in benchmark budget
# (BENCH_sim.json) covering the simulator hot path, the TLB debt set,
# the serve wire/request/batch path, and cluster routing.
#
#   scripts/bench.sh check    # default: fail on >10% ns/op regression
#                             # or any allocs/op increase vs BENCH_sim.json
#   scripts/bench.sh update   # re-measure, rewrite BENCH_sim.json, and
#                             # regenerate RESULTS.md from it
#   scripts/bench.sh render   # regenerate RESULTS.md only (no measuring)
#
# Tunables: BENCH_COUNT (runs per benchmark, min-ns wins; default 3),
# BENCH_TIME (per-run benchtime; default 300ms), BENCH_TOLERANCE
# (fractional ns/op slack in check mode; default 0.10, negative
# disables the timing gate and checks allocations only).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
count="${BENCH_COUNT:-3}"
btime="${BENCH_TIME:-300ms}"
tol="${BENCH_TOLERANCE:-0.10}"

run_bench() {
    go test -run '^$' -bench . -benchmem -benchtime "$btime" -count "$count" \
        ./internal/sim/ ./internal/tlb/ ./internal/serve/ ./internal/cluster/
}

case "$mode" in
update)
    run_bench | tee /dev/stderr | go run ./cmd/benchjson -out BENCH_sim.json
    go run ./cmd/benchjson -render BENCH_sim.json -md RESULTS.md
    ;;
check)
    run_bench | tee /dev/stderr | go run ./cmd/benchjson -check BENCH_sim.json -ns-tolerance "$tol"
    ;;
render)
    go run ./cmd/benchjson -render BENCH_sim.json -md RESULTS.md
    ;;
*)
    echo "usage: scripts/bench.sh [check|update|render]" >&2
    exit 2
    ;;
esac
