package domainvirt_test

import (
	"os"
	"path/filepath"
	"testing"

	"domainvirt"
	"domainvirt/internal/sim"
)

// storeFile returns the single snapshot file a primed store directory
// holds.
func storeFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.pmosnap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("store dir holds %d snapshot files, want 1: %v", len(matches), matches)
	}
	return matches[0]
}

// primeStore simulates the first process: builds one warmup into dir and
// returns the reference result.
func primeStore(t *testing.T, dir string, p domainvirt.Params, s domainvirt.Scheme, cfg domainvirt.Config) domainvirt.Result {
	t.Helper()
	cache, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, hit, err := domainvirt.RunCached("avl", p, s, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run against an empty store reported a hit")
	}
	if st := cache.Stats(); st.Warmups != 1 || st.DiskHits != 0 {
		t.Fatalf("priming stats = %+v, want 1 warmup, 0 disk hits", st)
	}
	return res
}

// TestSnapshotStoreCrossProcess is the persistence referee: a second
// cache over the same directory (a fresh process in the ci.sh grid-twice
// gate) must serve the warmup from disk — zero setup re-simulations —
// and fork to a bit-identical result.
func TestSnapshotStoreCrossProcess(t *testing.T) {
	dir := t.TempDir()
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()
	s := domainvirt.SchemeDomainVirt
	want := primeStore(t, dir, p, s, cfg)

	second, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := domainvirt.RunCached("avl", p, s, cfg, second)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second process missed the stored warmup")
	}
	if got != want {
		t.Errorf("disk-forked Result differs:\n got: %+v\nwant: %+v", got, want)
	}
	if st := second.Stats(); st.Warmups != 0 || st.DiskHits != 1 || st.DiskRejects != 0 {
		t.Errorf("second-process stats = %+v, want 0 warmups, 1 disk hit, 0 rejects", st)
	}

	// Cells differing only in the ops horizon share the stored warmup.
	longer := p
	longer.Ops = p.Ops * 2
	third, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := domainvirt.RunCached("avl", longer, s, cfg, third); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error("ops-horizon variant missed the stored warmup")
	}
	if st := third.Stats(); st.Warmups != 0 {
		t.Errorf("ops variant re-simulated the warmup: %+v", st)
	}
}

// TestSnapshotStoreKeyStability pins the content address across cost
// variations (same key: one warmup serves a cost sweep) and structural
// variations (different key).
func TestSnapshotStoreKeyStability(t *testing.T) {
	p := cacheParams()
	cfgA := domainvirt.DefaultConfig()
	cfgB := cfgA
	cfgB.Costs.TLBInval = 572
	cfgB.Mem.NVMLatency = 720
	keyA := domainvirt.SnapshotKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfgA)
	if keyA == "" {
		t.Fatal("empty snapshot key")
	}
	if k := domainvirt.SnapshotKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfgB); k != keyA {
		t.Error("cost-only config change moved the snapshot key")
	}
	longer := p
	longer.Ops = 99999
	if k := domainvirt.SnapshotKeyFor("avl", longer, domainvirt.SchemeDomainVirt, cfgA); k != keyA {
		t.Error("ops horizon is part of the warmup key; horizon rows cannot share warmups")
	}
	cfgC := cfgA
	cfgC.PTLBEntries = 8
	if k := domainvirt.SnapshotKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfgC); k == keyA {
		t.Error("structural config change did not move the snapshot key")
	}
	if k := domainvirt.SnapshotKeyFor("avl", p, domainvirt.SchemeMPKVirt, cfgA); k == keyA {
		t.Error("scheme change did not move the snapshot key")
	}
}

// TestSnapshotStoreHostileFiles: a primed store whose file is truncated,
// bit-flipped, or rewritten by a future codec must be rejected and
// rebuilt — correct results, reject counted, never a corrupt machine.
func TestSnapshotStoreHostileFiles(t *testing.T) {
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()
	s := domainvirt.SchemeMPKVirt

	mutations := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"bitflip": func(b []byte) []byte {
			mut := append([]byte(nil), b...)
			mut[len(mut)/2] ^= 0x10
			return mut
		},
		"future-version": func(b []byte) []byte {
			return sim.ResealSnapshotVersion(b, sim.SnapshotCodecVersion+1)
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			want := primeStore(t, dir, p, s, cfg)
			file := storeFile(t, dir)
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(file, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			cache, err := domainvirt.NewSnapshotCacheDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, hit, err := domainvirt.RunCached("avl", p, s, cfg, cache)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Error("hostile file served as a snapshot hit")
			}
			if got != want {
				t.Errorf("post-reject rebuild diverged:\n got: %+v\nwant: %+v", got, want)
			}
			st := cache.Stats()
			if st.DiskRejects != 1 || st.Warmups != 1 {
				t.Errorf("stats = %+v, want 1 reject and 1 rebuild", st)
			}

			// The rebuild overwrote the bad file: a third process hits.
			after, err := domainvirt.NewSnapshotCacheDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, hit, err := domainvirt.RunCached("avl", p, s, cfg, after); err != nil {
				t.Fatal(err)
			} else if !hit {
				t.Error("store not repaired after reject")
			}
		})
	}
}

// TestSnapshotStoreGeometryMismatch: a valid snapshot file planted under
// a key whose cell expects different geometry must be rejected via
// RestoreSafe, not crash the process.
func TestSnapshotStoreGeometryMismatch(t *testing.T) {
	p := cacheParams()
	cfg2 := domainvirt.DefaultConfig()
	cfg2.Cores = 2
	cfg4 := domainvirt.DefaultConfig()
	cfg4.Cores = 4

	dir := t.TempDir()
	primeStore(t, dir, p, domainvirt.SchemeDomainVirt, cfg2)
	twoCoreFile := storeFile(t, dir)
	data, err := os.ReadFile(twoCoreFile)
	if err != nil {
		t.Fatal(err)
	}
	// Plant the 2-core snapshot under the 4-core cell's key.
	key4 := domainvirt.SnapshotKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfg4)
	if err := os.WriteFile(filepath.Join(dir, key4+".pmosnap"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	want, err := domainvirt.Run("avl", p, domainvirt.SchemeDomainVirt, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := domainvirt.RunCached("avl", p, domainvirt.SchemeDomainVirt, cfg4, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("geometry-mismatched snapshot served as a hit")
	}
	if got != want {
		t.Errorf("post-mismatch rebuild diverged:\n got: %+v\nwant: %+v", got, want)
	}
	if st := cache.Stats(); st.DiskRejects != 1 {
		t.Errorf("stats = %+v, want 1 reject", st)
	}
}
