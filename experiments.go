package domainvirt

import (
	"fmt"
	"io"

	"domainvirt/internal/report"
	"domainvirt/internal/stats"
)

// MicroBenchmarks lists the Table IV multi-PMO benchmarks in paper order.
var MicroBenchmarks = []string{"avl", "rbt", "bt", "ll", "ss"}

// WhisperBenchmarks lists the Table III benchmarks in paper order.
var WhisperBenchmarks = []string{"echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"}

// ExpOptions scales the experiment suite. The defaults run in minutes on
// one core; Paper() restores the paper's operation counts.
type ExpOptions struct {
	Cfg Config

	WhisperOps  int
	WhisperInit int

	MicroOps  int
	MicroInit int

	// PMOCounts is the Figure 6/7 sweep grid.
	PMOCounts []int

	Seed int64

	// Workers bounds the number of experiment cells simulated
	// concurrently. 0 selects GOMAXPROCS; 1 forces sequential
	// execution. Results are identical either way — only wall-clock
	// time changes.
	Workers int

	// Progress, when non-nil, receives one "[done/total] label" line
	// per completed experiment cell (typically os.Stderr). Lines are
	// serialized; order follows completion. With Snapshots set, each
	// line is tagged "(snapshot)" when the cell forked from a cached
	// warmup checkpoint or "(warmup)" when it simulated its own setup.
	Progress io.Writer

	// Snapshots, when non-nil, shares warmup machine checkpoints across
	// cells and grids: the first cell with a given (workload, params,
	// scheme, structural config) simulates its setup phase once, and
	// every later such cell forks from the checkpoint. Results and
	// observability exports are bit-identical either way — only
	// wall-clock time changes. See NewSnapshotCache.
	Snapshots *SnapshotCache

	// SweepAddrs lists pmoworker daemon addresses. When non-empty,
	// grid cells are fanned out to these workers instead of local
	// goroutines; cells lost to a dead worker re-run locally, so every
	// table, CSV, and observability export stays byte-identical to a
	// sequential run no matter how many workers survive. See
	// cmd/pmoworker and internal/sweep.
	SweepAddrs []string
	// SweepConns is the number of protocol connections (concurrent
	// cells) per worker address; <= 0 means 1.
	SweepConns int

	// Obs configures grid observability. Results are unaffected.
	Obs ExpObs
}

// ExpObs turns on observability for every cell of an experiment grid.
type ExpObs struct {
	// Dir, when non-empty, receives per-cell manifests, per-cell epoch
	// series (when Epoch > 0), and per-scheme merged latency
	// histograms after the grid completes.
	Dir string
	// Epoch is the sampling period in retired instructions; 0 records
	// manifests and histograms only.
	Epoch uint64
}

// DefaultExpOptions returns the scaled-down defaults.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{
		Cfg:         DefaultConfig(),
		WhisperOps:  8000,
		WhisperInit: 2000,
		MicroOps:    4000,
		MicroInit:   1024,
		PMOCounts:   []int{16, 32, 64, 128, 256, 512, 1024},
		Seed:        42,
	}
}

// Paper returns a copy with the paper's full scale: 100k WHISPER
// transactions, 1M multi-PMO operations, stride-16 PMO sweep.
func (o ExpOptions) Paper() ExpOptions {
	o.WhisperOps = 100000
	o.MicroOps = 1000000
	o.PMOCounts = nil
	for n := 16; n <= 1024; n += 16 {
		o.PMOCounts = append(o.PMOCounts, n)
	}
	return o
}

func (o ExpOptions) whisperParams() Params {
	return Params{
		NumPMOs:      1,
		Ops:          o.WhisperOps,
		InitialElems: o.WhisperInit,
		PoolSize:     2 << 30,
		Seed:         o.Seed,
	}
}

func (o ExpOptions) microParams(pmos int) Params {
	return Params{
		NumPMOs:      pmos,
		Ops:          o.MicroOps,
		InitialElems: o.MicroInit,
		Seed:         o.Seed,
	}
}

// --- Table V: single-PMO WHISPER overheads.

// Table5Row is one WHISPER benchmark's result: permission-switch rate and
// percent overhead for default MPK, hardware MPK virtualization, and
// hardware domain virtualization, over the unprotected baseline.
type Table5Row struct {
	Benchmark      string
	SwitchesPerSec float64
	MPKPct         float64
	MPKVirtPct     float64
	DomainVirtPct  float64
}

// Table5 reproduces Table V. The (benchmark, scheme) cells are
// independent simulations and run on a bounded worker pool; rows are
// assembled afterwards in benchmark order, so the output is identical
// to a sequential run.
func Table5(opt ExpOptions) ([]Table5Row, error) {
	p := opt.whisperParams()
	var cells []expCell
	for _, name := range WhisperBenchmarks {
		for _, s := range []Scheme{SchemeBaseline, SchemeMPK, SchemeMPKVirt, SchemeDomainVirt} {
			cells = append(cells, expCell{name, p, s})
		}
	}
	grid, err := runGrid(opt, cells)
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, name := range WhisperBenchmarks {
		res := grid.at(name, p)
		base := res[SchemeBaseline]
		mpk := res[SchemeMPK]
		rows = append(rows, Table5Row{
			Benchmark:      name,
			SwitchesPerSec: mpk.SwitchesPerSec(opt.Cfg.ClockHz),
			MPKPct:         mpk.OverheadPct(base),
			MPKVirtPct:     res[SchemeMPKVirt].OverheadPct(base),
			DomainVirtPct:  res[SchemeDomainVirt].OverheadPct(base),
		})
	}
	return rows, nil
}

// Table5Report renders Table V.
func Table5Report(rows []Table5Row) *report.Table {
	t := &report.Table{
		Title:   "Table V: overhead of MPK vs. hardware MPK virtualization and domain virtualization (single-PMO WHISPER)",
		Headers: []string{"Benchmark", "Switches/sec", "MPK %", "MPK Virt %", "Domain Virt %"},
	}
	var sw, a, b, c float64
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.0f", r.SwitchesPerSec),
			fmt.Sprintf("%.2f", r.MPKPct),
			fmt.Sprintf("%.2f", r.MPKVirtPct),
			fmt.Sprintf("%.2f", r.DomainVirtPct))
		sw += r.SwitchesPerSec
		a += r.MPKPct
		b += r.MPKVirtPct
		c += r.DomainVirtPct
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRow("Average",
			fmt.Sprintf("%.0f", sw/n),
			fmt.Sprintf("%.2f", a/n),
			fmt.Sprintf("%.2f", b/n),
			fmt.Sprintf("%.2f", c/n))
	}
	return t
}

// --- Table VI: multi-PMO lowerbound overheads and switch rates.

// Table6Row is one micro benchmark's switch rate and lowerbound overhead.
type Table6Row struct {
	Benchmark      string
	SwitchesPerSec float64
	LowerboundPct  float64
}

// Table6 reproduces Table VI at 1024 PMOs. Cells run on the worker
// pool; see Table5.
func Table6(opt ExpOptions) ([]Table6Row, error) {
	p := opt.microParams(1024)
	var cells []expCell
	for _, name := range MicroBenchmarks {
		for _, s := range []Scheme{SchemeBaseline, SchemeLowerbound} {
			cells = append(cells, expCell{name, p, s})
		}
	}
	grid, err := runGrid(opt, cells)
	if err != nil {
		return nil, err
	}
	var rows []Table6Row
	for _, name := range MicroBenchmarks {
		res := grid.at(name, p)
		base := res[SchemeBaseline]
		lb := res[SchemeLowerbound]
		rows = append(rows, Table6Row{
			Benchmark:      name,
			SwitchesPerSec: lb.SwitchesPerSec(opt.Cfg.ClockHz),
			LowerboundPct:  lb.OverheadPct(base),
		})
	}
	return rows, nil
}

// Table6Report renders Table VI.
func Table6Report(rows []Table6Row) *report.Table {
	t := &report.Table{
		Title:   "Table VI: lowerbound overhead and permission switch frequencies (multi-PMO, 1024 PMOs)",
		Headers: []string{"Benchmark", "Switches/sec", "Lowerbound overhead %"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.0f", r.SwitchesPerSec),
			fmt.Sprintf("%.2f", r.LowerboundPct))
	}
	return t
}

// --- Figure 6: overhead over lowerbound vs. number of PMOs.

// Fig6Result is one benchmark's sweep: percent overhead over the
// lowerbound for each scheme at each PMO count.
type Fig6Result struct {
	Benchmark  string
	X          []int
	Libmpk     []float64
	MPKVirt    []float64
	DomainVirt []float64
}

// Fig6 reproduces Figure 6. The whole (benchmark, PMO count, scheme)
// grid is fanned across the worker pool; sweep points are assembled in
// benchmark-then-PMO order afterwards.
func Fig6(opt ExpOptions) ([]Fig6Result, error) {
	fig6Schemes := []Scheme{SchemeLowerbound, SchemeLibmpk, SchemeMPKVirt, SchemeDomainVirt}
	var cells []expCell
	for _, name := range MicroBenchmarks {
		for _, pmos := range opt.PMOCounts {
			for _, s := range fig6Schemes {
				cells = append(cells, expCell{name, opt.microParams(pmos), s})
			}
		}
	}
	grid, err := runGrid(opt, cells)
	if err != nil {
		return nil, err
	}
	var out []Fig6Result
	for _, name := range MicroBenchmarks {
		fr := Fig6Result{Benchmark: name}
		for _, pmos := range opt.PMOCounts {
			res := grid.at(name, opt.microParams(pmos))
			lb := res[SchemeLowerbound]
			fr.X = append(fr.X, pmos)
			fr.Libmpk = append(fr.Libmpk, res[SchemeLibmpk].OverheadPct(lb))
			fr.MPKVirt = append(fr.MPKVirt, res[SchemeMPKVirt].OverheadPct(lb))
			fr.DomainVirt = append(fr.DomainVirt, res[SchemeDomainVirt].OverheadPct(lb))
		}
		out = append(out, fr)
	}
	return out, nil
}

// Fig6Series converts one benchmark's sweep to a renderable figure.
func Fig6Series(fr Fig6Result) *report.Series {
	s := report.NewSeries(
		fmt.Sprintf("Figure 6 (%s): overhead over lowerbound vs. number of PMOs", fr.Benchmark),
		"PMOs", "% overhead")
	s.X = fr.X
	for i := range fr.X {
		s.Add("libmpk", fr.Libmpk[i])
		s.Add("mpkvirt", fr.MPKVirt[i])
		s.Add("domainvirt", fr.DomainVirt[i])
	}
	return s
}

// --- Figure 7: averages and headline speedups.

// Fig7Result is the cross-benchmark average overhead per scheme plus the
// speedups of the hardware schemes over libmpk at selected PMO counts.
type Fig7Result struct {
	X          []int
	Libmpk     []float64
	MPKVirt    []float64
	DomainVirt []float64
	// SpeedupAt maps a PMO count to (libmpk overhead / scheme
	// overhead) pairs — the paper headlines 64 and 1024.
	SpeedupAt map[int][2]float64 // [mpkvirt, domainvirt]
}

// Fig7 averages a Figure 6 sweep. An empty sweep is an error: silently
// returning a zero Fig7Result used to propagate into blank report
// figures far from the real cause (a misconfigured PMOCounts grid or a
// filtered-out benchmark list).
func Fig7(fig6 []Fig6Result) (Fig7Result, error) {
	if len(fig6) == 0 {
		return Fig7Result{}, fmt.Errorf("Fig7: empty Figure 6 sweep (no benchmark results to average)")
	}
	n := len(fig6[0].X)
	out := Fig7Result{
		X:          fig6[0].X,
		Libmpk:     make([]float64, n),
		MPKVirt:    make([]float64, n),
		DomainVirt: make([]float64, n),
		SpeedupAt:  make(map[int][2]float64),
	}
	for _, fr := range fig6 {
		for i := 0; i < n && i < len(fr.Libmpk); i++ {
			out.Libmpk[i] += fr.Libmpk[i]
			out.MPKVirt[i] += fr.MPKVirt[i]
			out.DomainVirt[i] += fr.DomainVirt[i]
		}
	}
	for i := 0; i < n; i++ {
		k := float64(len(fig6))
		out.Libmpk[i] /= k
		out.MPKVirt[i] /= k
		out.DomainVirt[i] /= k
	}
	for i, x := range out.X {
		if out.MPKVirt[i] > 0 && out.DomainVirt[i] > 0 {
			out.SpeedupAt[x] = [2]float64{
				out.Libmpk[i] / out.MPKVirt[i],
				out.Libmpk[i] / out.DomainVirt[i],
			}
		}
	}
	return out, nil
}

// Fig7Series converts the averages to a renderable figure.
func Fig7Series(fr Fig7Result) *report.Series {
	s := report.NewSeries("Figure 7: average overhead over lowerbound vs. number of PMOs", "PMOs", "% overhead")
	s.X = fr.X
	for i := range fr.X {
		s.Add("libmpk", fr.Libmpk[i])
		s.Add("mpkvirt", fr.MPKVirt[i])
		s.Add("domainvirt", fr.DomainVirt[i])
	}
	return s
}

// --- Table VII: overhead breakdown at 1024 PMOs.

// Table7Row is one benchmark's per-category overhead percentages
// (relative to the baseline run) for one scheme.
type Table7Row struct {
	Benchmark  string
	PermPct    float64
	EntryPct   float64
	DTTMissPct float64 // MPK virtualization only
	TLBInvPct  float64 // MPK virtualization only
	PTLBPct    float64 // domain virtualization only
	AccessPct  float64 // domain virtualization only
	TotalPct   float64
}

// Table7 reproduces Table VII: the breakdown for hardware MPK
// virtualization and hardware domain virtualization at 1024 PMOs.
// Cells run on the worker pool; see Table5.
func Table7(opt ExpOptions) (mpkvirt, domvirt []Table7Row, err error) {
	p := opt.microParams(1024)
	var cells []expCell
	for _, name := range MicroBenchmarks {
		for _, s := range []Scheme{SchemeBaseline, SchemeMPKVirt, SchemeDomainVirt} {
			cells = append(cells, expCell{name, p, s})
		}
	}
	grid, err := runGrid(opt, cells)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range MicroBenchmarks {
		res := grid.at(name, p)
		base := float64(res[SchemeBaseline].Cycles)
		pct := func(r Result, c stats.Category) float64 {
			return 100 * float64(r.Breakdown.Cycles[c]) / base
		}
		mv := res[SchemeMPKVirt]
		mpkvirt = append(mpkvirt, Table7Row{
			Benchmark:  name,
			PermPct:    pct(mv, stats.CatPermSwitch),
			EntryPct:   pct(mv, stats.CatEntryChange),
			DTTMissPct: pct(mv, stats.CatDTTMiss),
			TLBInvPct:  pct(mv, stats.CatTLBInval),
			TotalPct:   mv.OverheadPct(res[SchemeBaseline]),
		})
		dv := res[SchemeDomainVirt]
		domvirt = append(domvirt, Table7Row{
			Benchmark: name,
			PermPct:   pct(dv, stats.CatPermSwitch),
			EntryPct:  pct(dv, stats.CatEntryChange),
			PTLBPct:   pct(dv, stats.CatPTLBMiss),
			AccessPct: pct(dv, stats.CatPTLBAccess),
			TotalPct:  dv.OverheadPct(res[SchemeBaseline]),
		})
	}
	return mpkvirt, domvirt, nil
}

// Table7Report renders both halves of Table VII.
func Table7Report(mpkvirt, domvirt []Table7Row) *report.Table {
	t := &report.Table{
		Title:   "Table VII: overhead breakdown at 1024 PMOs (% of baseline execution time)",
		Headers: []string{"Scheme", "Source", "AVL", "RBT", "BT", "LL", "SS", "Avg"},
	}
	addRows := func(scheme string, rows []Table7Row, fields []struct {
		label string
		get   func(Table7Row) float64
	}) {
		for _, f := range fields {
			cells := []string{scheme, f.label}
			sum := 0.0
			for _, r := range rows {
				v := f.get(r)
				cells = append(cells, fmt.Sprintf("%.2f", v))
				sum += v
			}
			cells = append(cells, fmt.Sprintf("%.2f", sum/float64(len(rows))))
			t.AddRow(cells...)
		}
	}
	addRows("MPK Virt", mpkvirt, []struct {
		label string
		get   func(Table7Row) float64
	}{
		{"Permission change (%)", func(r Table7Row) float64 { return r.PermPct }},
		{"Entry changes (%)", func(r Table7Row) float64 { return r.EntryPct }},
		{"DTT misses (%)", func(r Table7Row) float64 { return r.DTTMissPct }},
		{"TLB invalidations (%)", func(r Table7Row) float64 { return r.TLBInvPct }},
		{"Total (%)", func(r Table7Row) float64 { return r.TotalPct }},
	})
	addRows("Domain Virt", domvirt, []struct {
		label string
		get   func(Table7Row) float64
	}{
		{"Permission change (%)", func(r Table7Row) float64 { return r.PermPct }},
		{"Entry changes (%)", func(r Table7Row) float64 { return r.EntryPct }},
		{"PTLB misses (%)", func(r Table7Row) float64 { return r.PTLBPct }},
		{"Access latency (%)", func(r Table7Row) float64 { return r.AccessPct }},
		{"Total (%)", func(r Table7Row) float64 { return r.TotalPct }},
	})
	return t
}

// --- Table VIII: area overheads (analytic).

// Table8Report computes the area-overhead summary from the configuration,
// assuming 1024 domains and up to 1024 threads per process as the paper
// does.
func Table8Report(cfg Config) *report.Table {
	const (
		domains = 1024
		threads = 1024
	)
	// DTTLB entry: 36-bit VA range tag + 32-bit domain ID + valid +
	// dirty + 4-bit key + 2-bit permission = 76 bits.
	dttlbBits := cfg.DTTLBEntries * 76
	// PTLB entry: 10-bit domain ID + 2-bit permission = 12 bits.
	ptlbBits := cfg.PTLBEntries * 12
	// DTT: per-(domain, thread) 2-bit permission = 256 KB; DRT holds
	// only VA->domain entries (16 KB); PT mirrors the DTT permissions.
	dttKB := domains * threads * 2 / 8 / 1024
	ptKB := domains * threads * 2 / 8 / 1024
	drtKB := 16
	tlbEntries := cfg.L1TLB.Entries + cfg.L2TLB.Entries

	t := &report.Table{
		Title:   "Table VIII: area overhead summary of the two designs",
		Headers: []string{"", "Hardware-based MPK Virtualization", "Domain Virtualization"},
	}
	t.AddRow("New registers", "1 64-bit register per core (DTT base)", "2 64-bit registers per core (DRT, PT bases)")
	t.AddRow("New buffer per core",
		fmt.Sprintf("DTTLB: %d entries x 76 bits = %d bytes", cfg.DTTLBEntries, dttlbBits/8),
		fmt.Sprintf("PTLB: %d entries x 12 bits = %d bytes", cfg.PTLBEntries, ptlbBits/8))
	t.AddRow("Other changes", "none (TLB and PKRU unchanged)",
		fmt.Sprintf("extend TLB entries by 6 bits (%d entries, +%d bytes)", tlbEntries, tlbEntries*6/8))
	t.AddRow("Memory per process",
		fmt.Sprintf("DTT: %d KB", dttKB),
		fmt.Sprintf("DRT + PT: %d KB + %d KB", drtKB, ptKB))
	return t
}
