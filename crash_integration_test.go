package domainvirt_test

import (
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"domainvirt"
)

// The service-layer half of the crash-consistency story: a pmod daemon
// under durable-transaction load is SIGKILLed mid-stream, restarted on
// the same store directory, and must come back with every pool in a
// prefix-consistent state — each TX_COMMIT wrote the same value to two
// slots, so after recovery the slots must agree — and immediately
// accept new transactions. internal/crashconform proves the same
// contract at media-step granularity; this test proves the wiring:
// pmod recovers the store on startup before serving.
func TestPmodKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "pmod")
	store := t.TempDir()

	const (
		pools = 4
		slotA = 72 << 10 // inside the heap, clear of the redo-log area
		slotB = slotA + 8
	)

	daemon := startPmod(t, bin, store)

	// Drive each pool with a stream of two-slot transactions; every
	// commit writes the same value to both slots.
	clients := make([]*domainvirt.ServeClient, pools)
	for i := range clients {
		c, err := domainvirt.DialServer(daemon.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Hello(fmt.Sprintf("crash-client-%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Open(fmt.Sprintf("crash-pool-%d", i), 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := c.Attach(true); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	stop := make(chan struct{})
	done := make(chan int, pools)
	for i, c := range clients {
		go func(i int, c *domainvirt.ServeClient) {
			var buf [8]byte
			committed := 0
			for v := uint64(1); ; v++ {
				select {
				case <-stop:
					done <- committed
					return
				default:
				}
				binary.LittleEndian.PutUint64(buf[:], v)
				data := append([]byte(nil), buf[:]...)
				err := c.TxCommit([]domainvirt.TxWrite{
					{Off: slotA, Data: data},
					{Off: slotB, Data: data},
				})
				if err != nil {
					// The daemon died under us — expected once killed.
					done <- committed
					return
				}
				committed++
			}
		}(i, c)
	}

	// Let the load overlap several background sync intervals, then pull
	// the rug: SIGKILL, no drain, no final sync.
	time.Sleep(600 * time.Millisecond)
	if err := daemon.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.cmd.Wait()
	close(stop)
	total := 0
	for range clients {
		total += <-done
	}
	if total == 0 {
		t.Fatal("no transaction committed before the kill; the test exercised nothing")
	}
	t.Logf("killed pmod after %d commits across %d pools", total, pools)

	// Restart on the same store. Startup recovery must settle any
	// interrupted transaction the kill left in a synced pool image.
	daemon2 := startPmod(t, bin, store)
	defer func() {
		daemon2.cmd.Process.Kill()
		daemon2.cmd.Wait()
	}()

	for i := 0; i < pools; i++ {
		c, err := domainvirt.DialServer(daemon2.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Pools are owned by the user that created them: reconnect as the
		// original client.
		if err := c.Hello(fmt.Sprintf("crash-client-%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Open(fmt.Sprintf("crash-pool-%d", i), 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := c.Attach(true); err != nil {
			t.Fatal(err)
		}
		a := readU64(t, c, slotA)
		b := readU64(t, c, slotB)
		if a != b {
			t.Errorf("pool %d: slots disagree after recovery: %d != %d (torn transaction survived)", i, a, b)
		}
		// The recovered store accepts and applies fresh transactions.
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], a+1000)
		err = c.TxCommit([]domainvirt.TxWrite{
			{Off: slotA, Data: buf[:]},
			{Off: slotB, Data: buf[:]},
		})
		if err != nil {
			t.Fatalf("pool %d: post-recovery commit: %v", i, err)
		}
		if got := readU64(t, c, slotA); got != a+1000 {
			t.Errorf("pool %d: post-recovery commit not applied: %d", i, got)
		}
	}
}

type pmodProc struct {
	cmd  *exec.Cmd
	addr string
}

// startPmod launches a pmod daemon on an ephemeral port with a fast
// background sync and waits for it to bind.
func startPmod(t *testing.T, bin, store string) *pmodProc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "pmod.addr")
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0", "-addr-file", addrFile,
		"-store", store, "-sync", "20ms", "-engine", "domainvirt")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return &pmodProc{cmd: cmd, addr: string(b)}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("pmod never wrote its address file")
	return nil
}

func readU64(t *testing.T, c *domainvirt.ServeClient, off uint32) uint64 {
	t.Helper()
	b, err := c.Read(off, 8)
	if err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint64(b)
}
