package domainvirt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"domainvirt"
)

func obsParams() domainvirt.Params {
	return domainvirt.Params{NumPMOs: 64, Ops: 3000, InitialElems: 256, Seed: 42}
}

// TestObsDeterminism is the layer's central contract: two runs with the
// same seed export byte-identical files (wall-clock time never enters
// them), and the series actually carries the engine events the paper's
// analysis needs (evictions, shootdowns).
func TestObsDeterminism(t *testing.T) {
	export := func(dir string) map[string][]byte {
		_, rec, err := domainvirt.RunObserved("avl", obsParams(), domainvirt.SchemeMPKVirt,
			domainvirt.DefaultConfig(), domainvirt.ObsOptions{Epoch: 5000})
		if err != nil {
			t.Fatal(err)
		}
		paths, err := rec.ExportDir(dir, "avl-mpkvirt")
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(paths))
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(p)] = b
		}
		return out
	}
	a := export(t.TempDir())
	b := export(t.TempDir())
	if len(a) != 4 {
		t.Fatalf("export wrote %d files, want 4", len(a))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Errorf("%s differs between identical-seed runs", name)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	series := string(a["avl-mpkvirt-series.jsonl"])
	if !strings.Contains(series, `"shootdowns":`) {
		t.Errorf("series missing shootdown events")
	}
	// At least one epoch must carry nonzero eviction/shootdown deltas
	// under mpkvirt at 64 PMOs (the DTT outgrows the 16 keys).
	if !strings.Contains(series, `"key_evictions":`) || strings.Count(series, `"key_evictions":0`) == strings.Count(series, `"key_evictions":`) {
		t.Errorf("no epoch recorded a nonzero key-eviction delta")
	}
}

// TestObsRecorderDoesNotPerturb pins the zero-perturbation contract: the
// Result of an observed run is identical to an unobserved one.
func TestObsRecorderDoesNotPerturb(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	for _, s := range []domainvirt.Scheme{
		domainvirt.SchemeBaseline, domainvirt.SchemeLibmpk,
		domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt,
	} {
		plain, err := domainvirt.Run("avl", obsParams(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		observed, rec, err := domainvirt.RunObserved("avl", obsParams(), s, cfg,
			domainvirt.ObsOptions{Epoch: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, observed) {
			t.Errorf("%s: observed Result differs from plain Result", s)
		}
		if len(rec.Samples()) == 0 {
			t.Errorf("%s: no samples recorded", s)
		}
		if rec.AccessHist().Count == 0 {
			t.Errorf("%s: empty access histogram", s)
		}
	}
}

// TestObsSamplerDisabled: with Epoch 0 the recorder still produces the
// manifest and histograms but no series, and the Result is unchanged.
func TestObsSamplerDisabled(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	plain, err := domainvirt.Run("avl", obsParams(), domainvirt.SchemeDomainVirt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, rec, err := domainvirt.RunObserved("avl", obsParams(), domainvirt.SchemeDomainVirt, cfg,
		domainvirt.ObsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("Result differs with a disabled sampler")
	}
	if n := len(rec.Samples()); n != 0 {
		t.Errorf("disabled sampler took %d samples", n)
	}
	if rec.AccessHist().Count == 0 || rec.SetPermHist().Count == 0 {
		t.Errorf("histograms must still record with sampling disabled")
	}
	man := rec.Manifest()
	if man.Scheme != "domainvirt" || man.Workload != "avl" || man.Seed != 42 || man.ConfigHash == "" {
		t.Errorf("manifest not stamped: %+v", man)
	}
	if man.Wall <= 0 {
		t.Errorf("wall time not stamped")
	}
}

// TestObsManifestResolvedParams: the manifest must hold the
// defaults-resolved parameters, not the zero-valued caller inputs.
func TestObsManifestResolvedParams(t *testing.T) {
	p := domainvirt.Params{NumPMOs: 4, Ops: 500, Seed: 1}
	_, rec, err := domainvirt.RunObserved("avl", p, domainvirt.SchemeMPK,
		domainvirt.DefaultConfig(), domainvirt.ObsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	man := rec.Manifest()
	if man.Threads < 1 {
		t.Errorf("threads not resolved: %+v", man)
	}
	if man.Cores < 1 {
		t.Errorf("cores not resolved: %+v", man)
	}
	if man.PMOs != 4 || man.Ops != 500 {
		t.Errorf("params not carried through: %+v", man)
	}
}

// TestGridObsAndProgress drives a real experiment grid with progress and
// observability on: per-cell completion lines, per-cell manifests and
// series, and per-scheme merged histograms must all appear, and the
// table rows must match an unobserved run exactly.
func TestGridObsAndProgress(t *testing.T) {
	opt := domainvirt.DefaultExpOptions()
	opt.MicroOps = 800
	opt.MicroInit = 128
	opt.Workers = 2

	plain, err := domainvirt.Table6(opt)
	if err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	dir := t.TempDir()
	opt.Progress = &progress
	opt.Obs = domainvirt.ExpObs{Dir: dir, Epoch: 2000}
	observed, err := domainvirt.Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observed grid rows differ from plain rows")
	}

	// Table6 runs 5 benchmarks x 2 schemes = 10 cells.
	lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	if len(lines) != 10 {
		t.Errorf("progress lines = %d, want 10:\n%s", len(lines), progress.String())
	}
	if !strings.Contains(progress.String(), "[10/10] ") {
		t.Errorf("missing final [10/10] line:\n%s", progress.String())
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var manifests, series, hists int
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "manifest-"):
			manifests++
		case strings.HasPrefix(e.Name(), "series-"):
			series++
		case strings.HasPrefix(e.Name(), "hist-"):
			hists++
		}
	}
	if manifests != 10 || series != 10 || hists != 2 {
		t.Errorf("export dir: %d manifests, %d series, %d hists (want 10/10/2)", manifests, series, hists)
	}
	for _, want := range []string{"manifest-avl-baseline-p1024.json", "series-ss-lowerbound-p1024.jsonl", "hist-baseline.prom", "hist-lowerbound.prom"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing export %s", want)
		}
	}
}
