package domainvirt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"domainvirt"
)

func cacheParams() domainvirt.Params {
	return domainvirt.Params{NumPMOs: 64, Ops: 600, InitialElems: 128, Threads: 2, Seed: 42}
}

// TestSnapshotCacheBitIdentical is the cache's referee: for every scheme
// the uncached Run, the cache-building RunCached, and the
// checkpoint-forking RunCached must return the exact same Result — and
// the hit flag must report which path served each call. One multi-PMO
// and one single-PMO (WHISPER) workload keep both setup shapes covered
// without making the race-enabled suite crawl.
func TestSnapshotCacheBitIdentical(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	cfg.Cores = 2
	for _, name := range []string{"avl", "hashmap"} {
		for _, s := range []domainvirt.Scheme{
			domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound,
			domainvirt.SchemeLibmpk, domainvirt.SchemeMPKVirt,
			domainvirt.SchemeDomainVirt,
		} {
			cache := domainvirt.NewSnapshotCache()
			want, err := domainvirt.Run(name, cacheParams(), s, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, s, err)
			}
			build, hit, err := domainvirt.RunCached(name, cacheParams(), s, cfg, cache)
			if err != nil {
				t.Fatalf("%s/%s cached build: %v", name, s, err)
			}
			if hit {
				t.Errorf("%s/%s: first cached run reported a snapshot hit", name, s)
			}
			if build != want {
				t.Errorf("%s/%s: cache-building Result differs from Run", name, s)
			}
			fork, hit, err := domainvirt.RunCached(name, cacheParams(), s, cfg, cache)
			if err != nil {
				t.Fatalf("%s/%s cached fork: %v", name, s, err)
			}
			if !hit {
				t.Errorf("%s/%s: second cached run missed the snapshot", name, s)
			}
			if fork != want {
				t.Errorf("%s/%s: checkpoint-forked Result differs from Run", name, s)
			}
			if cache.Len() != 1 {
				t.Errorf("%s/%s: cache holds %d entries, want 1", name, s, cache.Len())
			}
		}
	}
}

// TestSnapshotCacheMPKScheme: the raw-MPK scheme only supports <= 15
// domains; the cache must serve it bit-identically in that regime.
func TestSnapshotCacheMPKScheme(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	p := domainvirt.Params{NumPMOs: 8, Ops: 1000, InitialElems: 128, Seed: 42}
	cache := domainvirt.NewSnapshotCache()
	want, err := domainvirt.Run("avl", p, domainvirt.SchemeMPK, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := domainvirt.RunCached("avl", p, domainvirt.SchemeMPK, cfg, cache); err != nil {
		t.Fatal(err)
	}
	got, hit, err := domainvirt.RunCached("avl", p, domainvirt.SchemeMPK, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || got != want {
		t.Errorf("mpk cached fork: hit=%v, identical=%v", hit, got == want)
	}
}

// TestSnapshotCacheCostIndependence: the cache key covers structural
// configuration only, so a warmup built under one cost parameterization
// must serve a cell running under another — and yield exactly the result
// the uncached path produces under the new costs. This is what lets one
// warmup back a whole cost-ablation sweep.
func TestSnapshotCacheCostIndependence(t *testing.T) {
	cfgA := domainvirt.DefaultConfig()
	cfgB := domainvirt.DefaultConfig()
	cfgB.Costs.TLBInval = 572
	cfgB.Mem.NVMLatency = 720
	cfgB.FenceCost = 25

	for _, s := range []domainvirt.Scheme{domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt} {
		cache := domainvirt.NewSnapshotCache()
		// Build the checkpoint under cfgA's costs.
		if _, _, err := domainvirt.RunCached("avl", cacheParams(), s, cfgA, cache); err != nil {
			t.Fatal(err)
		}
		want, err := domainvirt.Run("avl", cacheParams(), s, cfgB)
		if err != nil {
			t.Fatal(err)
		}
		got, hit, err := domainvirt.RunCached("avl", cacheParams(), s, cfgB, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Errorf("%s: cost-variant run missed the structurally identical snapshot", s)
		}
		if got != want {
			t.Errorf("%s: cost-variant forked Result differs from uncached run", s)
		}
		if cache.Len() != 1 {
			t.Errorf("%s: cost sweep grew the cache to %d entries, want 1", s, cache.Len())
		}

		// A structural change must NOT share the warmup.
		cfgC := cfgA
		cfgC.DTTLBEntries = 8
		cfgC.PTLBEntries = 8
		if _, hit, err := domainvirt.RunCached("avl", cacheParams(), s, cfgC, cache); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Errorf("%s: structurally different config reported a snapshot hit", s)
		}
	}
}

// TestSnapshotCacheObservedExports: the observed cached path must export
// byte-identical artifacts to the uncached observed path — manifests,
// epoch series, and histograms alike.
func TestSnapshotCacheObservedExports(t *testing.T) {
	cfg := domainvirt.DefaultConfig()
	o := domainvirt.ObsOptions{Epoch: 2000}
	export := func(rec *domainvirt.Recorder, dir string) map[string][]byte {
		t.Helper()
		paths, err := rec.ExportDir(dir, "cell")
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(paths))
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(p)] = b
		}
		return out
	}

	_, plainRec, err := domainvirt.RunObserved("avl", cacheParams(), domainvirt.SchemeDomainVirt, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	cache := domainvirt.NewSnapshotCache()
	if _, _, _, err := domainvirt.RunObservedCached("avl", cacheParams(), domainvirt.SchemeDomainVirt, cfg, o, cache); err != nil {
		t.Fatal(err)
	}
	_, cachedRec, hit, err := domainvirt.RunObservedCached("avl", cacheParams(), domainvirt.SchemeDomainVirt, cfg, o, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("observed cached run missed the snapshot")
	}
	a := export(plainRec, t.TempDir())
	b := export(cachedRec, t.TempDir())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("export file sets differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Errorf("cached export missing %s", name)
			continue
		}
		if !bytes.Equal(data, other) {
			t.Errorf("%s differs between uncached and cached observed runs", name)
		}
	}
}

// TestGridSnapshotReuse: a grid run with a shared SnapshotCache must
// produce the same rows as without, tag progress lines with the warmup
// source, and serve repeated grids entirely from snapshots. A small
// RunSchemesOpt grid exercises the same runGrid path as the table
// runners at a fraction of Table VI's 1024-PMO setup cost.
func TestGridSnapshotReuse(t *testing.T) {
	p := domainvirt.Params{NumPMOs: 128, Ops: 400, InitialElems: 128, Seed: 42}
	schemes := []domainvirt.Scheme{
		domainvirt.SchemeBaseline, domainvirt.SchemeLowerbound,
		domainvirt.SchemeMPKVirt, domainvirt.SchemeDomainVirt,
	}
	opt := domainvirt.DefaultExpOptions()
	opt.Workers = 4
	plain, err := domainvirt.RunSchemesOpt("avl", p, opt, schemes...)
	if err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	opt.Progress = &progress
	opt.Snapshots = domainvirt.NewSnapshotCache()
	first, err := domainvirt.RunSchemesOpt("avl", p, opt, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, first) {
		t.Error("snapshot-cached grid rows differ from plain rows")
	}
	if !strings.Contains(progress.String(), " (warmup)") {
		t.Errorf("first grid run shows no (warmup) cells:\n%s", progress.String())
	}
	if strings.Contains(progress.String(), " (snapshot)") {
		t.Errorf("first grid run claims snapshot hits:\n%s", progress.String())
	}

	progress.Reset()
	second, err := domainvirt.RunSchemesOpt("avl", p, opt, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, second) {
		t.Error("second snapshot-cached grid rows differ from plain rows")
	}
	if strings.Contains(progress.String(), " (warmup)") {
		t.Errorf("second grid run re-simulated a warmup:\n%s", progress.String())
	}
	if !strings.Contains(progress.String(), " (snapshot)") {
		t.Errorf("second grid run shows no snapshot hits:\n%s", progress.String())
	}
}

// TestAblationCostsSharesWarmups: every AblationCosts row varies only
// cost parameters, so with a cache attached the whole 6-row x 4-scheme
// sweep must build exactly one warmup per scheme. Bit-identity of the
// forked cells against the uncached path is already pinned per scheme
// by TestSnapshotCacheBitIdentical and TestSnapshotCacheCostIndependence,
// so this test asserts only the sharing (a second full sweep would
// double its wall-clock for no new coverage).
func TestAblationCostsSharesWarmups(t *testing.T) {
	opt := tinyExpOptions()
	opt.MicroOps = 200
	opt.Workers = 2
	opt.Snapshots = domainvirt.NewSnapshotCache()
	rows, err := domainvirt.AblationCosts(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("AblationCosts returned %d rows, want 6", len(rows))
	}
	if n := opt.Snapshots.Len(); n != 4 {
		t.Errorf("AblationCosts built %d warmups, want 4 (one per scheme)", n)
	}
}
